package adapt

import (
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
)

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Config
		err  bool
	}{
		{"", Config{}, false},
		{"on", Config{Predictor: PredictorDecay}, false},
		{"decay", Config{Predictor: PredictorDecay}, false},
		{"ehc", Config{Predictor: PredictorEHC}, false},
		{"predictor=ehc,epoch=5000", Config{Predictor: PredictorEHC, Epoch: 5000}, false},
		{"predictor=decay,hysteresis=3,maxreplicas=1,minwindow=100,maxwindow=9000",
			Config{Predictor: PredictorDecay, Hysteresis: 3, MaxReplicas: 1, MinWindow: 100, MaxWindow: 9000}, false},
		{"epoch=5000", Config{}, true},          // no predictor selected
		{"predictor=foo", Config{}, true},       // unknown predictor
		{"predictor=decay,bad=1", Config{}, true}, // unknown key
		{"predictor=decay,epoch=x", Config{}, true},
		{"gibberish", Config{}, true},
	}
	for _, tc := range cases {
		got, err := Parse(tc.in)
		if (err != nil) != tc.err {
			t.Errorf("Parse(%q) err = %v, want err=%v", tc.in, err, tc.err)
			continue
		}
		if !tc.err && got != tc.want {
			t.Errorf("Parse(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestNormalized(t *testing.T) {
	// Disabled stays zero regardless of other fields.
	if got := (Config{Epoch: 999}).Normalized(); got != (Config{}) {
		t.Errorf("disabled config normalized to %+v, want zero", got)
	}
	got := Config{Predictor: PredictorDecay}.Normalized()
	want := Config{
		Predictor: PredictorDecay, Epoch: DefaultEpoch,
		Hysteresis: DefaultHysteresis, MaxReplicas: DefaultMaxReplicas,
		MinWindow: DefaultMinWindow, MaxWindow: DefaultMaxWindow,
	}
	if got != want {
		t.Errorf("Normalized() = %+v, want %+v", got, want)
	}
	// MaxWindow is clamped up to MinWindow.
	got = Config{Predictor: PredictorEHC, MinWindow: 9000, MaxWindow: 100}.Normalized()
	if got.MaxWindow != 9000 {
		t.Errorf("MaxWindow = %d, want clamped to MinWindow 9000", got.MaxWindow)
	}
	// Normalization is idempotent (the pool-shape canonicalization relies
	// on it).
	if again := got.Normalized(); again != got {
		t.Errorf("Normalized not idempotent: %+v vs %+v", again, got)
	}
}

func TestSchemeName(t *testing.T) {
	if n := (Config{Predictor: PredictorDecay}).SchemeName(); n != "ICR-ADAPT-decay" {
		t.Errorf("SchemeName = %q", n)
	}
	if n := (Config{Predictor: PredictorEHC}).SchemeName(); n != "ICR-ADAPT-ehc" {
		t.Errorf("SchemeName = %q", n)
	}
}

// testCache builds a small ICR cache for controller tests: 8 sets, 2-way,
// 64-byte blocks.
func testCache(t *testing.T) *core.Cache {
	t.Helper()
	mem := cache.NewMemory(6, 64)
	return core.New(core.Config{
		Size: 1024, Assoc: 2, BlockSize: 64,
		Scheme: core.ICR(core.ParityProt, core.LookupSerial, core.ReplStores),
		Repl:   core.ReplConfig{Replicas: 1, Victim: core.DeadOnly},
		Next:   mem, Mem: mem,
	})
}

func TestLadderEndpoints(t *testing.T) {
	ctrl := NewController(Config{Predictor: PredictorDecay, MaxReplicas: 2, MinWindow: 500, MaxWindow: 4000})
	t0 := ctrl.tuneFor(0)
	if t0.Replicas != 0 {
		t.Errorf("level 0 replicas = %d, want 0 (paused)", t0.Replicas)
	}
	t1 := ctrl.tuneFor(1)
	if t1.Replicas != 1 || t1.Victim != core.DeadOnly || t1.Lookup != core.LookupSerial || t1.DecayWindow != 4000 {
		t.Errorf("level 1 = %+v, want conservative start", t1)
	}
	t4 := ctrl.tuneFor(levelMax)
	if t4.Replicas != 2 || t4.Victim != core.DeadFirst || t4.Lookup != core.LookupParallel || t4.DecayWindow != 500 {
		t.Errorf("level 4 = %+v, want maximally aggressive", t4)
	}
	// The replica-count knob respects MaxReplicas=1 at every rung.
	capped := NewController(Config{Predictor: PredictorDecay, MaxReplicas: 1})
	for lv := 0; lv <= levelMax; lv++ {
		if r := capped.tuneFor(lv).Replicas; r > 1 {
			t.Errorf("level %d replicas = %d, want <= MaxReplicas 1", lv, r)
		}
	}
}

func TestAttachAppliesStartRung(t *testing.T) {
	c := testCache(t)
	ctrl := NewController(Config{Predictor: PredictorDecay, MaxWindow: 4000})
	ctrl.Attach(c)
	tune := c.Tune()
	if tune.DecayWindow != 4000 || tune.Replicas != 1 {
		t.Errorf("after Attach, cache tune = %+v, want the conservative start rung", tune)
	}
}

// driveEpochs feeds the controller hand-built epochs by issuing accesses
// on the cache between boundaries. hot=true re-references stores over a
// 12-block set: it fits the 8x2 array with room for a few replicas, but
// with nothing dead at the conservative window most replication attempts
// fail, leaving dirty parity-only (vulnerable) lines at a low miss rate.
// hot=false streams loads through distinct blocks (high miss rate).
// Epoch numbering continues across calls via ctrl's own boundary state.
func driveEpochs(c *core.Cache, ctrl *Controller, epochs int, hot bool) {
	period := ctrl.EpochCycles()
	start := ctrl.epochs
	next := uint64(0)
	for e := 0; e < epochs; e++ {
		boundary := (start + uint64(e) + 1) * period
		t := boundary - uint64(2*64)
		for i := 0; i < 64; i++ {
			if hot {
				c.Store(t, uint64(i%12)*64)
			} else {
				next++
				c.Load(t, ((start+1)<<20)+next*64)
			}
			t += 2
		}
		ctrl.Epoch(boundary)
	}
}

// TestControllerRampsUpOnHotVulnerableEpochs: a regime of cheap hits over
// dirty parity-only data must move the controller up the ladder.
func TestControllerRampsUpOnHotVulnerableEpochs(t *testing.T) {
	c := testCache(t)
	ctrl := NewController(Config{Predictor: PredictorDecay, Epoch: 1000, Hysteresis: 2})
	ctrl.Attach(c)
	driveEpochs(c, ctrl, 6, true)
	st := ctrl.Stats()
	if st.MovesUp == 0 {
		t.Fatalf("no up-moves after %d hot vulnerable epochs: %+v", st.Epochs, st)
	}
	// The first committed move must be upward from the start rung. (The
	// controller may legitimately step back down later: once replicas
	// start displacing this test's exactly-array-sized working set, the
	// miss rate tells it aggression stopped paying.)
	if st.Trajectory[0].Level != levelStart+1 {
		t.Errorf("first move went to level %d, want %d", st.Trajectory[0].Level, levelStart+1)
	}
}

// TestControllerBacksOffOnAdverseEpochs: a streaming regime (high miss
// rate) must move the controller down toward pause.
func TestControllerBacksOffOnAdverseEpochs(t *testing.T) {
	c := testCache(t)
	ctrl := NewController(Config{Predictor: PredictorDecay, Epoch: 1000, Hysteresis: 2})
	ctrl.Attach(c)
	driveEpochs(c, ctrl, 6, false)
	st := ctrl.Stats()
	if st.MovesDown == 0 {
		t.Errorf("no down-moves after %d adverse epochs: %+v", st.Epochs, st)
	}
	if st.FinalLevel >= levelStart {
		t.Errorf("final level %d, want below the start rung", st.FinalLevel)
	}
	if c.Tune().Replicas != ctrl.tuneFor(st.FinalLevel).Replicas {
		t.Error("cache tune state does not match the controller's final level")
	}
}

// TestHysteresisBlocksSingleEpochFlips: with Hysteresis=3, two agreeing
// epochs must not commit a move, and an alternating vote sequence must
// never move at all.
func TestHysteresisBlocksSingleEpochFlips(t *testing.T) {
	c := testCache(t)
	ctrl := NewController(Config{Predictor: PredictorDecay, Epoch: 1000, Hysteresis: 3})
	ctrl.Attach(c)
	driveEpochs(c, ctrl, 2, true)
	if st := ctrl.Stats(); st.MovesUp != 0 {
		t.Errorf("2 agreeing epochs committed a move under hysteresis 3: %+v", st)
	}

	c2 := testCache(t)
	ctrl2 := NewController(Config{Predictor: PredictorDecay, Epoch: 1000, Hysteresis: 2})
	ctrl2.Attach(c2)
	for e := 0; e < 8; e++ {
		driveEpochs(c2, ctrl2, 1, e%2 == 0) // alternate hot/adverse every epoch
	}
	if st := ctrl2.Stats(); st.MovesUp+st.MovesDown > 1 {
		t.Errorf("alternating epochs thrashed the ladder: %+v", st)
	}
}

// TestResetRestoresZeroRunState: after a run and Reset, the controller
// must behave identically to a fresh one — the pooled-instance contract.
func TestResetRestoresZeroRunState(t *testing.T) {
	cfg := Config{Predictor: PredictorEHC, Epoch: 1000, Hysteresis: 2}

	run := func(ctrl *Controller) *Controller {
		c := testCache(t)
		ctrl.Attach(c)
		driveEpochs(c, ctrl, 5, true)
		driveEpochs(c, ctrl, 5, false)
		return ctrl
	}
	fresh := run(NewController(cfg))
	reused := NewController(cfg)
	run(reused)
	reused.Reset()
	run(reused)

	a, b := fresh.Stats(), reused.Stats()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("reused controller diverged from fresh:\n fresh %+v\nreused %+v", a, b)
	}
}

// TestEpochIsAllocationFree pins the hot-path contract directly (the
// allocfree vet pass checks it statically; this checks it dynamically).
func TestEpochIsAllocationFree(t *testing.T) {
	c := testCache(t)
	ctrl := NewController(Config{Predictor: PredictorDecay, Epoch: 100})
	ctrl.Attach(c)
	now := uint64(0)
	allocs := testing.AllocsPerRun(50, func() {
		now += 100
		ctrl.Epoch(now)
	})
	if allocs != 0 {
		t.Errorf("Epoch allocates %.1f times per call, want 0", allocs)
	}
}
