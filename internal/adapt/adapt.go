// Package adapt implements the ICR-ADAPT runtime replication controller:
// a feedback loop that watches the ICR data cache over fixed observation
// epochs and retunes its replication knobs online through the core.Retune
// seam — replica count, victim policy, decay window, and PS↔PP replica
// lookup — so one scheme can track a workload whose locality regime
// changes mid-run, where every static scheme must pick one point and live
// with it.
//
// The controller walks a five-rung aggressiveness ladder (see tuneFor)
// under a hysteresis rule: a predictor inspects each epoch's counter
// deltas and liveness census and votes to replicate more, replicate less,
// or hold; only Config.Hysteresis consecutive agreeing votes commit a
// one-rung move. Two predictors share the seam: the paper's decay-counter
// view (supply of dead lines vs. demand from vulnerable dirty data) and
// an EHC-style expected-hit-count view (after Shah et al.,
// arXiv:1808.05024): blocks' expected remaining hits, estimated from
// aggregate reuse per fill, decide whether replicas are worth their
// upkeep.
//
// Determinism contract: every decision derives only from epoch counters
// (core.Stats deltas and a LivenessSurvey taken at the epoch boundary) —
// no wall-clock, no global RNG, no map iteration — so a run with the
// controller is as replayable and memoizable as a static one, and
// byte-identical at any worker count.
package adapt

import (
	"fmt"
	"strconv"
	"strings"
)

// PredictorKind selects the controller's driving predictor.
type PredictorKind uint8

// Predictor kinds.
const (
	// PredictorNone disables the controller (the zero value: a zero
	// Config means "static run").
	PredictorNone PredictorKind = iota
	// PredictorDecay votes from the decay mechanism's own signals: the
	// supply of dead lines against the demand from vulnerable dirty data.
	PredictorDecay
	// PredictorEHC votes from an expected-hit-count estimate: reuse per
	// fill decides whether blocks live long enough for replicas to pay.
	PredictorEHC
)

// String returns the predictor's short name.
func (k PredictorKind) String() string {
	switch k {
	case PredictorNone:
		return "none"
	case PredictorDecay:
		return "decay"
	case PredictorEHC:
		return "ehc"
	default:
		return fmt.Sprintf("predictor(%d)", uint8(k))
	}
}

// ParsePredictor is the inverse of PredictorKind.String for the enabled
// kinds.
func ParsePredictor(s string) (PredictorKind, error) {
	switch s {
	case "decay":
		return PredictorDecay, nil
	case "ehc":
		return PredictorEHC, nil
	default:
		return PredictorNone, fmt.Errorf("unknown adapt predictor %q (have decay, ehc)", s)
	}
}

// Config parameterizes the runtime controller. The zero value disables
// it. All fields are plain values: the struct rides the cluster wire
// verbatim and runner.KeyFor fingerprints every field, so adaptive runs
// never collide with static ones (or with differently tuned adaptive
// ones) in the memo cache, the disk store, or the fleet.
type Config struct {
	// Predictor selects the driving predictor; PredictorNone disables
	// the controller entirely.
	Predictor PredictorKind

	// Epoch is the observation-epoch length in cycles
	// (0 = DefaultEpoch).
	Epoch uint64

	// Hysteresis is how many consecutive agreeing predictor votes are
	// needed to commit a knob move (0 = DefaultHysteresis). Higher values
	// move later but never thrash at a noisy phase boundary.
	Hysteresis int

	// MaxReplicas bounds the replica-count knob at the ladder's top rung
	// (0 = DefaultMaxReplicas).
	MaxReplicas int

	// MinWindow is the decay window used by the aggressive rungs, in
	// cycles (0 = DefaultMinWindow, the §5.4 relaxed window). The ladder
	// never drops to the paper's most aggressive setting of 0 on its
	// own: dead-on-access-completion churns installs and displaces
	// soon-reused lines, which the controller would only have to learn
	// to avoid; ask for it explicitly (minwindow=1) if you want it.
	MinWindow uint64

	// MaxWindow is the decay window used by the conservative rungs, in
	// cycles (0 = DefaultMaxWindow).
	MaxWindow uint64
}

// Controller defaults.
const (
	DefaultEpoch       = 20_000
	DefaultHysteresis  = 2
	DefaultMaxReplicas = 2
	DefaultMinWindow   = 1_000
	DefaultMaxWindow   = 4_000
)

// Enabled reports whether the controller is requested at all.
func (c Config) Enabled() bool { return c.Predictor != PredictorNone }

// Normalized fills defaulted fields of an enabled config; a disabled
// config normalizes to the zero value.
func (c Config) Normalized() Config {
	if !c.Enabled() {
		return Config{}
	}
	if c.Epoch == 0 {
		c.Epoch = DefaultEpoch
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = DefaultHysteresis
	}
	if c.MaxReplicas <= 0 {
		c.MaxReplicas = DefaultMaxReplicas
	}
	if c.MinWindow == 0 {
		c.MinWindow = DefaultMinWindow
	}
	if c.MaxWindow == 0 {
		c.MaxWindow = DefaultMaxWindow
	}
	if c.MaxWindow < c.MinWindow {
		c.MaxWindow = c.MinWindow
	}
	return c
}

// SchemeName returns the reported scheme label for runs driven by this
// controller: "ICR-ADAPT-decay" or "ICR-ADAPT-ehc".
func (c Config) SchemeName() string { return "ICR-ADAPT-" + c.Predictor.String() }

// Parse parses the textual adapt spec every entry point shares (the
// icrsim/icrbench -adapt flag and the icrd request field). "" disables
// the controller; "decay", "ehc", or "on" (= decay) select a predictor
// with default knobs; otherwise the value is comma-separated key=value
// pairs: predictor (decay|ehc), epoch (cycles), hysteresis (epochs),
// maxreplicas, minwindow, maxwindow (cycles).
func Parse(v string) (Config, error) {
	var c Config
	switch v {
	case "":
		return c, nil
	case "on", "decay":
		c.Predictor = PredictorDecay
		return c, nil
	case "ehc":
		c.Predictor = PredictorEHC
		return c, nil
	}
	for _, part := range strings.Split(v, ",") {
		key, val, found := strings.Cut(strings.TrimSpace(part), "=")
		if !found {
			return Config{}, fmt.Errorf(`bad adapt element %q: want key=value (or "decay"/"ehc")`, part)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if key == "predictor" {
			p, err := ParsePredictor(val)
			if err != nil {
				return Config{}, err
			}
			c.Predictor = p
			continue
		}
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return Config{}, fmt.Errorf("bad adapt value %q: %w", part, err)
		}
		switch key {
		case "epoch":
			c.Epoch = n
		case "hysteresis":
			c.Hysteresis = int(n)
		case "maxreplicas":
			c.MaxReplicas = int(n)
		case "minwindow":
			c.MinWindow = n
		case "maxwindow":
			c.MaxWindow = n
		default:
			return Config{}, fmt.Errorf("unknown adapt key %q (want predictor, epoch, hysteresis, maxreplicas, minwindow, maxwindow)", key)
		}
	}
	if !c.Enabled() {
		return Config{}, fmt.Errorf("adapt spec %q selects no predictor: add predictor=decay|ehc", v)
	}
	return c, nil
}
