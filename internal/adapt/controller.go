package adapt

import (
	"repro/internal/core"
	"repro/internal/metrics"
)

// Ladder geometry. Level 0 pauses replication entirely; levelStart is the
// conservative rung every run begins on; levelMax spends everything the
// config allows (replica quota at MaxReplicas, window at MinWindow,
// dead-first victims, parallel lookup).
const (
	levelStart = 1
	levelMax   = 4
)

// Self-evaluation constants: a committed move (either direction) whose
// next epoch scores worse than the commit epoch by more than revertMargin
// is undone, and re-trying that rung is suppressed for revertHold epochs
// so the controller does not bang against a losing move while the regime
// that rejected it persists. Only the rejected rung is embargoed — see
// heldBack.
const (
	revertMargin = 1.12
	revertHold   = 16
)

// replEnergyWeight scales the objective's install-churn term. A replica
// install costs about one L1 line write — the same order as a demand
// access — so successes-per-access approximates the epoch's replication
// energy overhead fraction; the weight discounts it because an install
// that protects a dirty line buys vulnerability down even when the
// objective's census term cannot see it yet.
const replEnergyWeight = 0.5

// ppEnergyWeight charges the parallel-lookup rung for its probe cost: PP
// probes the replica sets alongside the home set on every load, roughly
// one extra array read per read, so the charge is reads-per-access scaled
// by this weight. The event counters cannot see this cost (it is energy
// and port pressure, not misses), so the controller prices it the way a
// real power-budgeted controller would — from the mechanism's known
// per-event cost.
const ppEnergyWeight = 0.5

// trajectoryCap bounds the recorded move list so the controller's state
// is a fixed-size array (pool-friendly, allocation-free). Moves past the
// cap still retune the cache and still count in MovesUp/MovesDown; only
// the per-move record is dropped.
const trajectoryCap = 64

// move is one committed ladder move, recorded for telemetry.
type move struct {
	epoch uint64
	level int8
}

// Controller is the ICR-ADAPT feedback loop. It lives on the pooled sim
// instance next to the cache it drives: Attach binds it to a cache and
// applies the starting rung, the per-cycle epoch hook calls Epoch at each
// boundary, and Stats renders telemetry after the run. All mutable state
// sits here (predictors are stateless), so Reset restores the zero run
// state exactly.
//
//icrvet:pooled pooled with the sim instance (internal/sim)
type Controller struct {
	cfg  Config    //icrvet:persistent construction input; normalized, never mutated
	pred Predictor //icrvet:persistent stateless predictor selected from cfg at construction

	// cache is the attached cache; nil until Attach.
	cache *core.Cache

	// prev/prevCycle snapshot the counter state at the last epoch
	// boundary; obs is the scratch observation handed to the predictor.
	prev      core.Stats
	prevCycle uint64
	obs       EpochObs

	// level is the current ladder rung; streak is the signed run of
	// agreeing votes feeding the hysteresis rule.
	level  int
	streak int

	epochs    uint64
	movesUp   int
	movesDown int

	// pendingEval marks that the epoch just starting is the first after a
	// committed move; lastObjective is the objective at commit time, the
	// baseline the next epoch is judged against; lastMove is the direction
	// of that move. After a revert, hold/holdDir/holdEdge suppress
	// re-trying the move that just failed: for hold epochs, moves in
	// direction holdDir that would reach holdEdge again are blocked (moves
	// elsewhere on the ladder stay free).
	pendingEval   bool
	lastObjective float64
	lastMove      int
	hold          int
	holdDir       int
	holdEdge      int
	predHits      int
	predMisses    int

	nmoves int
	moves  [trajectoryCap]move
}

// NewController builds a controller for an enabled config. It panics on a
// disabled config: callers gate construction on Config.Enabled, so
// reaching here without a predictor is a programming error, not input.
func NewController(cfg Config) *Controller {
	cfg = cfg.Normalized()
	if !cfg.Enabled() {
		panic("adapt: NewController with disabled config")
	}
	c := &Controller{cfg: cfg, pred: predictorFor(cfg.Predictor)}
	c.Reset()
	return c
}

// Reset restores the pre-Attach zero state; cfg and pred persist.
func (c *Controller) Reset() {
	c.cache = nil
	c.prev = core.Stats{}
	c.prevCycle = 0
	c.obs = EpochObs{}
	c.level = levelStart
	c.streak = 0
	c.epochs = 0
	c.movesUp = 0
	c.movesDown = 0
	c.pendingEval = false
	c.lastObjective = 0
	c.lastMove = 0
	c.hold = 0
	c.holdDir = 0
	c.holdEdge = 0
	c.predHits = 0
	c.predMisses = 0
	c.nmoves = 0
	c.moves = [trajectoryCap]move{}
}

// Attach binds the controller to a cache and applies the starting rung.
// The cache must be freshly reset (counters at zero): the first epoch's
// deltas are measured against the zero state.
func (c *Controller) Attach(cache *core.Cache) {
	c.cache = cache
	cache.Retune(c.tuneFor(c.level))
}

// EpochCycles returns the observation-epoch length in cycles.
func (c *Controller) EpochCycles() uint64 { return c.cfg.Epoch }

// Epoch closes the observation epoch ending at cycle now: delta the
// cache's counters against the last boundary, census the array, score the
// previous move if one is pending, take the predictor's vote through the
// hysteresis rule, and retune the cache if a move commits. Allocation-free
// and deterministic; called from the simulator's hot loop.
func (c *Controller) Epoch(now uint64) {
	cache := c.cache
	if cache == nil || now <= c.prevCycle {
		return
	}
	s := cache.Stats()
	o := &c.obs
	o.Cycles = now - c.prevCycle
	o.Reads = s.Reads - c.prev.Reads
	o.ReadHits = s.ReadHits - c.prev.ReadHits
	o.ReadMisses = s.ReadMisses - c.prev.ReadMisses
	o.Writes = s.Writes - c.prev.Writes
	o.WriteMisses = s.WriteMisses - c.prev.WriteMisses
	o.ReplAttempts = s.ReplAttempts - c.prev.ReplAttempts
	o.ReplSuccesses = s.ReplSuccesses - c.prev.ReplSuccesses
	o.ReadHitsWithReplica = s.ReadHitsWithReplica - c.prev.ReadHitsWithReplica
	cache.SurveyLiveness(now, &o.Survey)
	c.epochs++

	j := c.objective(o, cache.LineCount())
	if c.pendingEval {
		c.pendingEval = false
		if j < c.lastObjective {
			c.predHits++
		} else {
			c.predMisses++
			// A clearly worse objective right after a move means the
			// regime does not reward it — an escalation that burns port
			// slots or churns installs, or a retreat that strips
			// protection the workload still wanted. Undo the move and
			// block re-trying that rung long enough for the regime to
			// change; the rest of the ladder stays reachable.
			undo := -c.lastMove
			if j > c.lastObjective*revertMargin &&
				((undo < 0 && c.level > 0) || (undo > 0 && c.level < levelMax)) {
				c.holdDir = c.lastMove
				c.holdEdge = c.level
				c.hold = revertHold
				c.commit(undo, j)
				c.pendingEval = false // the revert itself is not re-scored
			}
		}
	}
	if c.hold > 0 {
		c.hold--
	}

	switch v := c.pred.Vote(o); {
	case v > 0:
		if c.streak < 0 {
			c.streak = 0
		}
		c.streak++
	case v < 0:
		if c.streak > 0 {
			c.streak = 0
		}
		c.streak--
	default: // hold: streaks decay toward zero
		if c.streak > 0 {
			c.streak--
		} else if c.streak < 0 {
			c.streak++
		}
	}

	if c.streak >= c.cfg.Hysteresis && c.level < levelMax && !c.heldBack(+1) {
		c.commit(+1, j)
	} else if c.streak <= -c.cfg.Hysteresis && c.level > 0 && !c.heldBack(-1) {
		if c.level > 2 || backOffWorthy(o) {
			c.commit(-1, j)
		}
	}
	// Clamp the streak at the hysteresis threshold: at a ladder endpoint
	// there is no rung left to commit, and an unbounded streak would make
	// the controller deaf to a regime flip for as many epochs as the old
	// regime lasted.
	if c.streak > c.cfg.Hysteresis {
		c.streak = c.cfg.Hysteresis
	} else if c.streak < -c.cfg.Hysteresis {
		c.streak = -c.cfg.Hysteresis
	}

	c.prev = s
	c.prevCycle = now
}

// heldBack reports whether a move in direction dir would re-try the rung
// a recent revert just rejected. Only that rung is embargoed: after a
// failed escalation to level 3, the controller may still climb 0 -> 2 the
// moment the regime asks for protection; after a failed retreat to level
// 0, it may still shed the expensive rungs down to level 1.
func (c *Controller) heldBack(dir int) bool {
	if c.hold <= 0 || dir != c.holdDir {
		return false
	}
	if dir > 0 {
		return c.level+1 >= c.holdEdge
	}
	return c.level-1 <= c.holdEdge
}

// backOffWorthy gates descents from the cheap rungs (2 -> 1 and 1 -> 0).
// An adverse miss rate alone does not justify backing off there: those
// rungs never displace live primaries (dead-only victims, or dead-first
// whose fallback displaces only replicas), and in streaming regimes dead
// blocks are so plentiful that replication keeps protecting dirty lines
// essentially for free — the misses the predictor is reacting to are the
// workload's, not replication's. Backing further off pays in exactly two
// regimes, both visible in the epoch's own counters:
//
//   - futile: attempts keep failing because the working set leaves no
//     dead real estate, so the install effort buys nothing; or
//   - crowded: the census finds far more resident replicas than dead
//     primaries, meaning the working set wants the whole array and every
//     replica is squatting capacity the demand stream will reclaim as a
//     miss.
//
// The expensive rungs (3+: shrunken window, parallel lookup) descend on
// miss pressure alone.
func backOffWorthy(o *EpochObs) bool {
	if o.ReplAttempts == 0 || o.ReplSuccesses*16 < o.ReplAttempts {
		return true
	}
	return o.Survey.DeadPrimaries*2 < o.Survey.Replicas
}

// commit moves one rung in direction dir, retunes the cache, and arms the
// next epoch's objective evaluation.
func (c *Controller) commit(dir int, j float64) {
	c.level += dir
	c.cache.Retune(c.tuneFor(c.level))
	if dir > 0 {
		c.movesUp++
	} else {
		c.movesDown++
	}
	c.streak = 0
	c.pendingEval = true
	c.lastObjective = j
	c.lastMove = dir
	if c.nmoves < trajectoryCap {
		c.moves[c.nmoves] = move{epoch: c.epochs, level: int8(c.level)}
		c.nmoves++
	}
}

// objective is the scalar the controller tries to shrink: the fraction of
// the array currently vulnerable (dirty, parity-only), plus the epoch miss
// rate, plus a latency term (cycles per demand access, scaled into the
// same range), plus the install-churn and parallel-probe energy proxies.
// Replication lowers the
// first and — when replicas displace live blocks, parallel lookup burns
// port slots, or a zero window churns installs — raises the rest, so the
// sum scores the vulnerability/performance/power trade the paper sweeps.
// Float math here is a fixed expression over integer counters:
// deterministic on every platform Go targets.
func (c *Controller) objective(o *EpochObs, lines int) float64 {
	vuln := 0.0
	if lines > 0 {
		vuln = float64(o.Survey.Vulnerable) / float64(lines)
	}
	lat, churn, probe := 0.0, 0.0, 0.0
	if a := o.accesses(); a > 0 {
		lat = float64(o.Cycles) / float64(a) / 16
		churn = replEnergyWeight * float64(o.ReplSuccesses) / float64(a)
		if c.tuneFor(c.level).Lookup == core.LookupParallel {
			probe = ppEnergyWeight * float64(o.Reads) / float64(a)
		}
	}
	return vuln + o.missRate() + lat + churn + probe
}

// tuneFor maps a ladder rung to concrete knob settings, ordered by the
// marginal cost of each escalation:
//
//	0 — pause: no new replicas (resident ones stay).
//	1 — conservative start: 1 replica, dead-only victims, MaxWindow, PS.
//	    Never displaces anything; protects only when dead space exists.
//	2 — dead-first victims: installs succeed even in a live set, at the
//	    cost of displacing the LRU line there.
//	3 — shrink the window to MinWindow: far more lines decay dead, so
//	    more replication real estate, but replicas churn faster.
//	4 — everything: MaxReplicas, dead-first, MinWindow, parallel lookup.
func (c *Controller) tuneFor(level int) core.TuneState {
	t := core.TuneState{
		Replicas:    1,
		Victim:      core.DeadOnly,
		Lookup:      core.LookupSerial,
		DecayWindow: c.cfg.MaxWindow,
	}
	switch {
	case level <= 0:
		t.Replicas = 0
	case level == 1:
	case level == 2:
		t.Victim = core.DeadFirst
	case level == 3:
		t.Victim = core.DeadFirst
		t.DecayWindow = c.cfg.MinWindow
	default: // level 4
		t.Replicas = c.cfg.MaxReplicas
		t.Victim = core.DeadFirst
		t.DecayWindow = c.cfg.MinWindow
		t.Lookup = core.LookupParallel
	}
	return t
}

// Stats renders the controller's run telemetry. Called once after the
// run, off the hot path (it allocates the trajectory slice).
func (c *Controller) Stats() *metrics.AdaptiveStats {
	final := c.tuneFor(c.level)
	st := &metrics.AdaptiveStats{
		Predictor:        c.cfg.Predictor.String(),
		EpochCycles:      c.cfg.Epoch,
		Epochs:           c.epochs,
		MovesUp:          c.movesUp,
		MovesDown:        c.movesDown,
		PredHits:         c.predHits,
		PredMisses:       c.predMisses,
		FinalLevel:       c.level,
		FinalReplicas:    final.Replicas,
		FinalDecayWindow: final.DecayWindow,
		FinalVictim:      final.Victim.String(),
		FinalLookup:      final.Lookup.String(),
	}
	if c.nmoves > 0 {
		st.Trajectory = make([]metrics.AdaptiveMove, c.nmoves)
		for i := 0; i < c.nmoves; i++ {
			st.Trajectory[i] = metrics.AdaptiveMove{Epoch: c.moves[i].epoch, Level: int(c.moves[i].level)}
		}
	}
	return st
}
