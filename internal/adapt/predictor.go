package adapt

import "repro/internal/core"

// EpochObs is one observation epoch's aggregate view of the cache: the
// deltas of the event counters over the epoch plus a liveness census of
// the array taken at the epoch boundary. Predictors see nothing else, so
// their votes are a pure function of architectural state — the
// determinism contract.
type EpochObs struct {
	// Cycles is the epoch length actually observed (the last epoch of a
	// run may be short).
	Cycles uint64

	// Demand-access deltas.
	Reads, ReadHits, ReadMisses uint64
	Writes, WriteMisses         uint64

	// Replication deltas.
	ReplAttempts, ReplSuccesses uint64
	ReadHitsWithReplica         uint64

	// Survey is the array census at the epoch boundary.
	Survey core.LivenessSurvey
}

// accesses returns the epoch's demand accesses.
func (o *EpochObs) accesses() uint64 { return o.Reads + o.Writes }

// missRate returns the epoch's demand miss rate.
func (o *EpochObs) missRate() float64 {
	a := o.accesses()
	if a == 0 {
		return 0
	}
	return float64(o.ReadMisses+o.WriteMisses) / float64(a)
}

// Vote is a predictor's per-epoch verdict on replication aggressiveness.
type Vote int8

// Votes.
const (
	// VoteLess asks for one rung less aggressive replication.
	VoteLess Vote = -1
	// VoteHold keeps the current rung (streaks decay toward zero).
	VoteHold Vote = 0
	// VoteMore asks for one rung more aggressive replication.
	VoteMore Vote = 1
)

// Predictor maps an epoch observation to a vote. Implementations must be
// stateless (all controller state lives in Controller, where Reset can
// see it) and deterministic.
type Predictor interface {
	// Name is the short predictor name used in scheme labels ("decay",
	// "ehc").
	Name() string
	// Vote inspects one epoch and votes on the aggressiveness ladder.
	Vote(o *EpochObs) Vote
}

// Decision thresholds. Epoch miss rates above missHigh mark an adverse
// regime (streaming or pointer chasing over a working set the cache
// cannot hold): dead-block prediction is unreliable there and replicas
// only displace soon-needed blocks. Rates below missLow mark a
// cache-resident regime where replicas are cheap to keep. The EHC bounds
// are expected hits per fill (hit deltas over fill deltas): blocks
// averaging fewer than ehcLow hits per residency die too fast for a
// replica to pay for itself; blocks above ehcHigh are long-lived hot data
// worth protecting aggressively.
const (
	missHigh = 0.08
	missLow  = 0.06
	ehcHigh  = 14.0
	ehcLow   = 8.0
)

// decayPredictor is the paper-mechanism view: the decay counters supply
// dead lines (replication real estate) and the vulnerability bits supply
// demand (dirty data protected only by parity). Replicate harder while
// vulnerable data exists and misses are cheap; back off the moment the
// miss rate says the working set no longer fits.
type decayPredictor struct{}

func (decayPredictor) Name() string { return "decay" }

func (decayPredictor) Vote(o *EpochObs) Vote {
	if o.accesses() == 0 {
		return VoteHold
	}
	mr := o.missRate()
	if mr > missHigh {
		return VoteLess
	}
	if o.Survey.Vulnerable > 0 && mr < missLow {
		return VoteMore
	}
	return VoteHold
}

// ehcPredictor is the expected-hit-count view (after the EHC dead-block
// predictor line of work): estimate how many more hits a resident block
// can expect from the epoch's aggregate reuse-per-fill ratio, and spend
// replication effort only on regimes whose blocks live long enough to
// amortize it.
type ehcPredictor struct{}

func (ehcPredictor) Name() string { return "ehc" }

func (ehcPredictor) Vote(o *EpochObs) Vote {
	if o.accesses() == 0 {
		return VoteHold
	}
	fills := o.ReadMisses + o.WriteMisses
	if fills == 0 {
		// Fully cache-resident epoch: infinite expected hits.
		return VoteMore
	}
	ehc := float64(o.ReadHits) / float64(fills)
	switch {
	case ehc >= ehcHigh:
		return VoteMore
	case ehc <= ehcLow:
		return VoteLess
	default:
		return VoteHold
	}
}

// predictorFor returns the predictor implementation for a kind; the
// controller's constructor has already rejected PredictorNone.
func predictorFor(k PredictorKind) Predictor {
	if k == PredictorEHC {
		return ehcPredictor{}
	}
	return decayPredictor{}
}
