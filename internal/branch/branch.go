// Package branch implements the branch-prediction hardware from the paper's
// Table 1 configuration: a combined (tournament) predictor built from a
// bimodal predictor with a 2K-entry table and a two-level predictor with a
// 1K-entry table and 8 bits of history, a 512-entry 4-way set-associative
// BTB, and a return-address stack.
package branch

// counter2 is a 2-bit saturating counter. Values 0..1 predict not-taken,
// 2..3 predict taken.
type counter2 uint8

func (c counter2) taken() bool { return c >= 2 }

func (c counter2) update(taken bool) counter2 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// DirPredictor predicts conditional-branch directions.
type DirPredictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the resolved direction.
	Update(pc uint64, taken bool)
}

// ---------------------------------------------------------------------------
// Bimodal
// ---------------------------------------------------------------------------

// Bimodal is a PC-indexed table of 2-bit saturating counters.
type Bimodal struct {
	table []counter2
	mask  uint64 //icrvet:persistent geometry: fixed by the construction-time entry count
}

var _ DirPredictor = (*Bimodal)(nil)

// NewBimodal returns a bimodal predictor with the given number of entries,
// which must be a power of two. Counters start weakly not-taken, matching
// SimpleScalar's initialization.
func NewBimodal(entries int) *Bimodal {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("branch: bimodal entries must be a positive power of two")
	}
	t := make([]counter2, entries)
	for i := range t {
		t[i] = 1
	}
	return &Bimodal{table: t, mask: uint64(entries) - 1}
}

func (b *Bimodal) index(pc uint64) uint64 { return (pc >> 2) & b.mask }

// Predict implements DirPredictor.
func (b *Bimodal) Predict(pc uint64) bool { return b.table[b.index(pc)].taken() }

// Update implements DirPredictor.
func (b *Bimodal) Update(pc uint64, taken bool) {
	i := b.index(pc)
	b.table[i] = b.table[i].update(taken)
}

// ---------------------------------------------------------------------------
// Two-level (gshare-style global history)
// ---------------------------------------------------------------------------

// TwoLevel is a global-history two-level adaptive predictor: an 8-bit (by
// default) global history register is XORed with the PC to index a table of
// 2-bit counters.
type TwoLevel struct {
	table    []counter2
	mask     uint64 //icrvet:persistent geometry: fixed by the construction-time entry count
	history  uint64
	histMask uint64 //icrvet:persistent geometry: fixed by the construction-time history length
}

var _ DirPredictor = (*TwoLevel)(nil)

// NewTwoLevel returns a two-level predictor with the given table size
// (power of two) and history length in bits.
func NewTwoLevel(entries, historyBits int) *TwoLevel {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("branch: two-level entries must be a positive power of two")
	}
	if historyBits <= 0 || historyBits > 30 {
		panic("branch: history bits out of range")
	}
	t := make([]counter2, entries)
	for i := range t {
		t[i] = 1
	}
	return &TwoLevel{
		table:    t,
		mask:     uint64(entries) - 1,
		histMask: (1 << uint(historyBits)) - 1,
	}
}

func (g *TwoLevel) index(pc uint64) uint64 { return ((pc >> 2) ^ g.history) & g.mask }

// Predict implements DirPredictor.
func (g *TwoLevel) Predict(pc uint64) bool { return g.table[g.index(pc)].taken() }

// Update implements DirPredictor. It trains the indexed counter and then
// shifts the outcome into the global history register.
func (g *TwoLevel) Update(pc uint64, taken bool) {
	i := g.index(pc)
	g.table[i] = g.table[i].update(taken)
	g.history = (g.history << 1) & g.histMask
	if taken {
		g.history |= 1
	}
}

// ---------------------------------------------------------------------------
// Combined (tournament)
// ---------------------------------------------------------------------------

// Combined is a tournament predictor: a meta table of 2-bit counters picks
// between a bimodal and a two-level component per branch.
type Combined struct {
	bimodal  *Bimodal
	twoLevel *TwoLevel
	meta     []counter2
	metaMask uint64 //icrvet:persistent geometry: fixed by the construction-time chooser size
}

var _ DirPredictor = (*Combined)(nil)

// Config sizes the components of a Combined predictor.
type Config struct {
	BimodalEntries  int // 2-bit counters in the bimodal table
	TwoLevelEntries int // 2-bit counters in the two-level table
	HistoryBits     int // global history length
	MetaEntries     int // 2-bit counters in the chooser table
}

// DefaultConfig is the paper's Table 1 predictor: bimodal 2KB table
// (2048 entries), two-level 1KB table (1024 entries) with 8-bit history,
// and a 1024-entry chooser.
func DefaultConfig() Config {
	return Config{
		BimodalEntries:  2048,
		TwoLevelEntries: 1024,
		HistoryBits:     8,
		MetaEntries:     1024,
	}
}

// NewCombined builds a tournament predictor from cfg.
func NewCombined(cfg Config) *Combined {
	if cfg.MetaEntries <= 0 || cfg.MetaEntries&(cfg.MetaEntries-1) != 0 {
		panic("branch: meta entries must be a positive power of two")
	}
	meta := make([]counter2, cfg.MetaEntries)
	for i := range meta {
		meta[i] = 1 // weakly prefer bimodal
	}
	return &Combined{
		bimodal:  NewBimodal(cfg.BimodalEntries),
		twoLevel: NewTwoLevel(cfg.TwoLevelEntries, cfg.HistoryBits),
		meta:     meta,
		metaMask: uint64(cfg.MetaEntries) - 1,
	}
}

func (c *Combined) metaIndex(pc uint64) uint64 { return (pc >> 2) & c.metaMask }

// Predict implements DirPredictor. A meta counter value >= 2 selects the
// two-level component.
func (c *Combined) Predict(pc uint64) bool {
	if c.meta[c.metaIndex(pc)].taken() {
		return c.twoLevel.Predict(pc)
	}
	return c.bimodal.Predict(pc)
}

// Update implements DirPredictor. The chooser is trained toward whichever
// component predicted correctly when they disagree; both components are
// always trained.
func (c *Combined) Update(pc uint64, taken bool) {
	bp := c.bimodal.Predict(pc)
	gp := c.twoLevel.Predict(pc)
	if bp != gp {
		i := c.metaIndex(pc)
		// Train toward the two-level predictor when it was right.
		c.meta[i] = c.meta[i].update(gp == taken)
	}
	c.bimodal.Update(pc, taken)
	c.twoLevel.Update(pc, taken)
}

// ---------------------------------------------------------------------------
// BTB
// ---------------------------------------------------------------------------

// BTB is a set-associative branch target buffer with LRU replacement.
type BTB struct {
	sets  int //icrvet:persistent geometry: fixed at construction
	assoc int //icrvet:persistent geometry: fixed at construction
	// entries[set*assoc+way]
	entries []btbEntry
	clock   uint64
}

type btbEntry struct {
	valid  bool
	pc     uint64
	target uint64
	lru    uint64
}

// NewBTB returns a BTB with the given total entries and associativity.
// Entries must be a multiple of assoc and entries/assoc a power of two.
func NewBTB(entries, assoc int) *BTB {
	if entries <= 0 || assoc <= 0 || entries%assoc != 0 {
		panic("branch: invalid BTB geometry")
	}
	sets := entries / assoc
	if sets&(sets-1) != 0 {
		panic("branch: BTB set count must be a power of two")
	}
	return &BTB{
		sets:    sets,
		assoc:   assoc,
		entries: make([]btbEntry, entries),
	}
}

func (b *BTB) set(pc uint64) int { return int((pc >> 2) & uint64(b.sets-1)) }

// Lookup returns the predicted target for pc, if present.
func (b *BTB) Lookup(pc uint64) (target uint64, ok bool) {
	base := b.set(pc) * b.assoc
	for w := 0; w < b.assoc; w++ {
		e := &b.entries[base+w]
		if e.valid && e.pc == pc {
			b.clock++
			e.lru = b.clock
			return e.target, true
		}
	}
	return 0, false
}

// Update installs or refreshes the target for pc, evicting the LRU way on
// a miss.
func (b *BTB) Update(pc, target uint64) {
	base := b.set(pc) * b.assoc
	b.clock++
	victim := base
	for w := 0; w < b.assoc; w++ {
		e := &b.entries[base+w]
		if e.valid && e.pc == pc {
			e.target = target
			e.lru = b.clock
			return
		}
		if !e.valid {
			victim = base + w
			break
		}
		if e.lru < b.entries[victim].lru {
			victim = base + w
		}
	}
	b.entries[victim] = btbEntry{valid: true, pc: pc, target: target, lru: b.clock}
}

// ---------------------------------------------------------------------------
// Return-address stack
// ---------------------------------------------------------------------------

// RAS is a fixed-depth return-address stack. Pushing onto a full stack
// wraps (overwriting the oldest entry), matching typical hardware.
type RAS struct {
	stack []uint64 //icrvet:persistent backing array: entries above top are unreachable and every push overwrites its slot
	top   int      // number of live entries, capped at len(stack)
	pos   int      // next push position
}

// NewRAS returns a return-address stack with the given depth.
func NewRAS(depth int) *RAS {
	if depth <= 0 {
		panic("branch: RAS depth must be positive")
	}
	return &RAS{stack: make([]uint64, depth)}
}

// Push records a return address.
func (r *RAS) Push(addr uint64) {
	r.stack[r.pos] = addr
	r.pos = (r.pos + 1) % len(r.stack)
	if r.top < len(r.stack) {
		r.top++
	}
}

// Pop predicts the most recently pushed return address. It returns false
// when the stack is empty.
func (r *RAS) Pop() (uint64, bool) {
	if r.top == 0 {
		return 0, false
	}
	r.pos = (r.pos - 1 + len(r.stack)) % len(r.stack)
	r.top--
	return r.stack[r.pos], true
}

// Depth returns the number of live entries.
func (r *RAS) Depth() int { return r.top }

// ---------------------------------------------------------------------------
// Reset (arena reuse)
// ---------------------------------------------------------------------------

// Reset restores the predictor to its post-construction state (counters
// weakly not-taken) without reallocating the table.
func (b *Bimodal) Reset() {
	for i := range b.table {
		b.table[i] = 1
	}
}

// Reset restores the predictor to its post-construction state without
// reallocating the table.
func (g *TwoLevel) Reset() {
	for i := range g.table {
		g.table[i] = 1
	}
	g.history = 0
}

// Reset restores the tournament predictor to its post-construction state
// without reallocating any table.
func (c *Combined) Reset() {
	c.bimodal.Reset()
	c.twoLevel.Reset()
	for i := range c.meta {
		c.meta[i] = 1
	}
}

// Reset empties the BTB without reallocating its entry array.
func (b *BTB) Reset() {
	clear(b.entries)
	b.clock = 0
}

// Reset empties the stack (entry contents are overwritten before use).
func (r *RAS) Reset() {
	r.top = 0
	r.pos = 0
}

// Cap returns the stack's capacity (its construction depth).
func (r *RAS) Cap() int { return len(r.stack) }
