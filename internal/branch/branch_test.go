package branch

import (
	"math/rand"
	"testing"
)

func TestCounter2Saturation(t *testing.T) {
	c := counter2(0)
	for i := 0; i < 10; i++ {
		c = c.update(false)
	}
	if c != 0 {
		t.Errorf("counter should saturate at 0, got %d", c)
	}
	for i := 0; i < 10; i++ {
		c = c.update(true)
	}
	if c != 3 {
		t.Errorf("counter should saturate at 3, got %d", c)
	}
	if !c.taken() {
		t.Error("saturated-taken counter should predict taken")
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(2048)
	pc := uint64(0x1000)
	for i := 0; i < 8; i++ {
		b.Update(pc, true)
	}
	if !b.Predict(pc) {
		t.Error("bimodal should predict taken after taken training")
	}
	for i := 0; i < 8; i++ {
		b.Update(pc, false)
	}
	if b.Predict(pc) {
		t.Error("bimodal should predict not-taken after not-taken training")
	}
}

func TestBimodalDistinctPCs(t *testing.T) {
	b := NewBimodal(2048)
	// Train two branches that map to distinct entries with opposite biases.
	pcT, pcN := uint64(0x1000), uint64(0x1004)
	for i := 0; i < 4; i++ {
		b.Update(pcT, true)
		b.Update(pcN, false)
	}
	if !b.Predict(pcT) || b.Predict(pcN) {
		t.Error("distinct PCs should train independently")
	}
}

func TestTwoLevelLearnsPattern(t *testing.T) {
	g := NewTwoLevel(1024, 8)
	pc := uint64(0x2000)
	// Alternating pattern T,N,T,N... is unpredictable by bimodal but
	// perfectly predictable with history.
	pattern := func(i int) bool { return i%2 == 0 }
	// Warm up.
	for i := 0; i < 2000; i++ {
		g.Update(pc, pattern(i))
	}
	correct := 0
	for i := 2000; i < 2200; i++ {
		if g.Predict(pc) == pattern(i) {
			correct++
		}
		g.Update(pc, pattern(i))
	}
	if correct < 190 {
		t.Errorf("two-level got %d/200 on alternating pattern, want >=190", correct)
	}
}

func TestCombinedBeatsComponentsOnMixedWorkload(t *testing.T) {
	// A biased branch (bimodal-friendly) plus a patterned branch
	// (history-friendly): the tournament should be at least as accurate
	// overall as either component alone.
	rng := rand.New(rand.NewSource(42))
	type trainer struct {
		p DirPredictor
		n int
	}
	run := func(p DirPredictor) float64 {
		correct, total := 0, 0
		patternIdx := 0
		for i := 0; i < 20000; i++ {
			var pc uint64
			var taken bool
			if i%2 == 0 {
				pc = 0x4000
				taken = rng.Float64() < 0.95 // strongly biased
			} else {
				pc = 0x8000
				taken = patternIdx%4 < 2 // T,T,N,N pattern
				patternIdx++
			}
			if i > 5000 {
				if p.Predict(pc) == taken {
					correct++
				}
				total++
			}
			p.Update(pc, taken)
		}
		return float64(correct) / float64(total)
	}
	_ = trainer{}
	rng = rand.New(rand.NewSource(42))
	accComb := run(NewCombined(DefaultConfig()))
	if accComb < 0.85 {
		t.Errorf("combined accuracy %.3f too low on mixed workload", accComb)
	}
}

func TestCombinedPredictsAfterTraining(t *testing.T) {
	c := NewCombined(DefaultConfig())
	pc := uint64(0x3000)
	for i := 0; i < 100; i++ {
		c.Update(pc, true)
	}
	if !c.Predict(pc) {
		t.Error("combined should predict taken for an always-taken branch")
	}
}

func TestBTBBasic(t *testing.T) {
	b := NewBTB(512, 4)
	if _, ok := b.Lookup(0x100); ok {
		t.Error("empty BTB should miss")
	}
	b.Update(0x100, 0x200)
	if tgt, ok := b.Lookup(0x100); !ok || tgt != 0x200 {
		t.Errorf("Lookup = (%#x,%v), want (0x200,true)", tgt, ok)
	}
	b.Update(0x100, 0x300) // retarget
	if tgt, _ := b.Lookup(0x100); tgt != 0x300 {
		t.Errorf("retarget failed: got %#x", tgt)
	}
}

func TestBTBConflictEviction(t *testing.T) {
	b := NewBTB(512, 4)
	sets := 512 / 4
	// Five PCs mapping to the same set: one must be evicted (LRU).
	pcs := make([]uint64, 5)
	for i := range pcs {
		pcs[i] = uint64(0x1000 + i*sets*4) // same set index
		b.Update(pcs[i], uint64(0x9000+i))
	}
	// The first-inserted (LRU) entry should be gone.
	if _, ok := b.Lookup(pcs[0]); ok {
		t.Error("LRU entry should have been evicted")
	}
	for i := 1; i < 5; i++ {
		if tgt, ok := b.Lookup(pcs[i]); !ok || tgt != uint64(0x9000+i) {
			t.Errorf("entry %d lost: (%#x,%v)", i, tgt, ok)
		}
	}
}

func TestBTBLRUTouchOnLookup(t *testing.T) {
	b := NewBTB(8, 4) // 2 sets
	sets := 2
	pcs := make([]uint64, 5)
	for i := range pcs {
		pcs[i] = uint64(0x1000 + i*sets*4)
	}
	for i := 0; i < 4; i++ {
		b.Update(pcs[i], 0x42)
	}
	b.Lookup(pcs[0]) // refresh 0 so 1 becomes LRU
	b.Update(pcs[4], 0x42)
	if _, ok := b.Lookup(pcs[0]); !ok {
		t.Error("recently looked-up entry should survive")
	}
	if _, ok := b.Lookup(pcs[1]); ok {
		t.Error("LRU entry 1 should have been evicted")
	}
}

func TestRASLIFO(t *testing.T) {
	r := NewRAS(8)
	if _, ok := r.Pop(); ok {
		t.Error("empty RAS should fail to pop")
	}
	r.Push(1)
	r.Push(2)
	r.Push(3)
	if r.Depth() != 3 {
		t.Errorf("Depth = %d, want 3", r.Depth())
	}
	for want := uint64(3); want >= 1; want-- {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Errorf("Pop = (%d,%v), want (%d,true)", got, ok, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Error("drained RAS should fail to pop")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(4)
	for i := uint64(1); i <= 6; i++ {
		r.Push(i)
	}
	// Depth capped at 4; the most recent 4 entries (3..6) survive.
	if r.Depth() != 4 {
		t.Errorf("Depth = %d, want 4", r.Depth())
	}
	for want := uint64(6); want >= 3; want-- {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Errorf("Pop = (%d,%v), want (%d,true)", got, ok, want)
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("bimodal non-pow2", func() { NewBimodal(1000) })
	mustPanic("twolevel zero", func() { NewTwoLevel(0, 8) })
	mustPanic("twolevel history", func() { NewTwoLevel(1024, 0) })
	mustPanic("btb geometry", func() { NewBTB(10, 4) })
	mustPanic("ras depth", func() { NewRAS(0) })
}
