package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// runResetCoverage verifies that pooled types are fully re-initialized
// between runs. A type marked //icrvet:pooled is an arena root handed out
// by a sync.Pool-style cache (sim's shape-keyed instance pool): every one
// of its fields — exported or not — must either be assigned in the type's
// Reset (or reset) method, directly or through same-package helpers, or
// carry an //icrvet:persistent annotation explaining why it deliberately
// survives. A field that is neither is cross-run state contamination: the
// second run on a pooled instance starts from the first run's leftovers,
// and the corruption is invisible until two configs that differ only in
// the forgotten knob share a pool slot.
//
// Coverage then descends: any field (covered or persistent) whose type is
// an in-module named struct with its own Reset/reset method is checked
// the same way, so the whole component tree behind the pool — caches,
// write buffer, memory, the CPU core — is verified, not just the top
// struct. Types without a Reset method are not descended into; if they
// hold per-run state, the parent's Reset must rebuild them.
func runResetCoverage(a *Analysis, r *Reporter) {
	mod := a.Mod
	seen := make(map[*types.Named]bool)
	for _, pkg := range mod.Packages {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					pos := mod.Fset.Position(ts.Pos())
					if a.dirs.annotationAt(annPooled, pos) == nil {
						continue
					}
					obj, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
					if !ok {
						continue
					}
					named, ok := obj.Type().(*types.Named)
					if !ok {
						continue
					}
					if _, ok := named.Underlying().(*types.Struct); !ok {
						r.Reportf(ts.Pos(), "//icrvet:pooled on %s, which is not a struct type", obj.Name())
						continue
					}
					checkPooledType(a, r, named, ts.Pos(), seen)
				}
			}
		}
	}
}

// resetMethodNode finds the Reset (or unexported reset) method of named
// and returns its call-graph node, or nil.
func resetMethodNode(a *Analysis, named *types.Named) *funcNode {
	for _, name := range []string{"Reset", "reset"} {
		obj, _, _ := types.LookupFieldOrMethod(
			types.NewPointer(named), true, named.Obj().Pkg(), name)
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if node := a.graph().funcOf(fn); node != nil {
			return node
		}
	}
	return nil
}

// checkPooledType verifies one struct in the pooled component tree.
func checkPooledType(a *Analysis, r *Reporter, named *types.Named, at token.Pos, seen map[*types.Named]bool) {
	if seen[named] {
		return
	}
	seen[named] = true
	mod := a.Mod

	reset := resetMethodNode(a, named)
	if reset == nil {
		r.Reportf(at,
			"pooled type %s has no Reset method: a pooled instance of it carries every field across runs", typeDisplay(named))
		return
	}
	covered := coveredFields(reset.pkg, reset.decl)

	st := named.Underlying().(*types.Struct)
	var missing []*types.Var
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		fpos := mod.Fset.Position(f.Pos())
		persistent := a.dirs.annotationAt(annPersistent, fpos) != nil
		if !covered[fieldKey(named, f.Name())] && !persistent {
			missing = append(missing, f)
		}
		// Descend into resettable components regardless of how the field
		// itself is handled: a persistent *cpu.Core is reset elsewhere,
		// but its own Reset still has to be complete.
		if sub := asNamedStruct(f.Type()); sub != nil && inModule(mod, sub) {
			if resetMethodNode(a, sub) != nil {
				checkPooledType(a, r, sub, f.Pos(), seen)
			}
		}
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i].Pos() < missing[j].Pos() })
	for _, f := range missing {
		r.Reportf(f.Pos(),
			"field %s is not assigned in %s and not marked //icrvet:persistent: it leaks state between pooled runs",
			fieldKey(named, f.Name()), reset.Name())
	}
}

// typeDisplay renders a named type as "pkg.Name".
func typeDisplay(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Name() + "." + obj.Name()
}
