package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// runFloatOrder flags, module-wide, floating-point accumulation whose
// operand order follows a map's randomized iteration: `sum += m[k]` inside
// `for k := range m`. Float addition is not associative, so the same data
// can produce different totals run to run — exactly the silent
// result-corruption mode the byte-identical-CSV guarantee exists to
// prevent. The fix is always the same: collect the keys, sort them, then
// accumulate in sorted order.
func runFloatOrder(_ *Analysis, pkg *Package, r *Reporter) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pkg.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			ast.Inspect(rng.Body, func(b ast.Node) bool {
				as, ok := b.(*ast.AssignStmt)
				if !ok {
					return true
				}
				checkFloatAccum(pkg, r, as)
				return true
			})
			return true
		})
	}
}

// isCompoundAssign reports whether as is an op= assignment.
func isCompoundAssign(as *ast.AssignStmt) bool {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	}
	return false
}

// checkFloatAccum flags `x += e` / `x -= e` / `x *= e` / `x /= e` and the
// spelled-out `x = x + e` forms when x is floating-point.
func checkFloatAccum(pkg *Package, r *Reporter, as *ast.AssignStmt) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	if !isFloat(pkg, as.Lhs[0]) {
		return
	}
	if isCompoundAssign(as) {
		r.Reportf(as.Pos(),
			"floating-point accumulation inside range over map: float ops are not associative, so the randomized iteration order changes the total; collect keys, sort, then accumulate")
		return
	}
	if as.Tok == token.ASSIGN && selfReferences(as.Lhs[0], as.Rhs[0]) {
		r.Reportf(as.Pos(),
			"floating-point accumulation (x = x op ...) inside range over map: iteration order changes the total; collect keys, sort, then accumulate")
	}
}

// isFloat reports whether e has floating-point (or complex) type.
func isFloat(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&(types.IsFloat|types.IsComplex) != 0
}

// selfReferences reports whether rhs mentions the lvalue lhs (textually,
// by expression shape), catching `x = x + v` and `s.f = v + s.f`.
func selfReferences(lhs, rhs ast.Expr) bool {
	want := exprString(lhs)
	if want == "" {
		return false
	}
	found := false
	ast.Inspect(rhs, func(n ast.Node) bool {
		if found {
			return false
		}
		if e, ok := n.(ast.Expr); ok && exprString(e) == want {
			found = true
			return false
		}
		return true
	})
	return found
}

// exprString renders simple lvalue shapes (idents and dotted selectors)
// for structural comparison; anything else yields "".
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprString(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}
