package lint

import (
	"go/ast"
	"go/types"
)

// errIgnoredCallees never meaningfully fail (strings.Builder and
// bytes.Buffer document that their Write methods always return nil) or are
// conventionally fire-and-forget in a CLI (the fmt print family writing to
// stdout/stderr). Everything else must be handled.
var errIgnoredCallees = map[string]bool{
	"fmt.Print": true, "fmt.Printf": true, "fmt.Println": true,
	"fmt.Fprint": true, "fmt.Fprintf": true, "fmt.Fprintln": true,
	"(*strings.Builder).Write":       true,
	"(*strings.Builder).WriteString": true,
	"(*strings.Builder).WriteByte":   true,
	"(*strings.Builder).WriteRune":   true,
	"(*bytes.Buffer).Write":          true,
	"(*bytes.Buffer).WriteString":    true,
	"(*bytes.Buffer).WriteByte":      true,
	"(*bytes.Buffer).WriteRune":      true,
}

// runDroppedErr flags call statements that discard an error result inside
// the CLIs and the parallel runner: in cmd/, a dropped error means the
// process exits 0 with wrong or missing output; in internal/runner it
// means a failed simulation is silently folded into the figures. Deferred
// calls and explicit `_ =` discards are allowed — the first is accepted
// cleanup idiom, the second is a visible, greppable decision.
func runDroppedErr(_ *Analysis, pkg *Package, r *Reporter) {
	if !inScope(pkg.Rel, r.errPaths()) {
		return
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkDroppedErr(pkg, r, call)
			return true
		})
	}
}

// checkDroppedErr reports a call statement whose results include an error.
func checkDroppedErr(pkg *Package, r *Reporter, call *ast.CallExpr) {
	errAt := errorResultIndex(pkg, call)
	if errAt < 0 {
		return
	}
	name := calleeName(pkg, call)
	if errIgnoredCallees[name] {
		return
	}
	if name == "" {
		name = "call"
	}
	r.Reportf(call.Pos(),
		"result of %s includes an error that is silently discarded; handle it or discard explicitly with `_ =`", name)
}

// errorResultIndex returns the index of an error result of the call, or -1.
func errorResultIndex(pkg *Package, call *ast.CallExpr) int {
	tv, ok := pkg.Info.Types[call]
	if !ok {
		return -1
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return i
			}
		}
	default:
		if isErrorType(tv.Type) {
			return 0
		}
	}
	return -1
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// calleeName renders the called function for diagnostics and allowlisting:
// "fmt.Fprintf" for package functions, "(*strings.Builder).WriteString"
// for methods, the local name otherwise.
func calleeName(pkg *Package, call *ast.CallExpr) string {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	return fn.FullName()
}
