// Package lint is icrvet's analysis engine: a standard-library-only static
// analyzer (go/ast, go/parser, go/types) that enforces the repository's
// determinism, concurrency, and pooling invariants. Nine passes run over
// the whole module, sharing one type-checked load and (for the
// reachability-based passes) one static call graph:
//
//   - determinism: wall-clock time, global math/rand, and order-dependent
//     map iteration in the simulation hot path
//   - keycoverage: runner.KeyFor must reference every exported field of its
//     input configuration structs (transitively), so a new config knob
//     cannot silently alias distinct runs in the memo cache
//   - syncmisuse: by-value copies of lock- or atomic-bearing structs, and
//     64-bit atomics at 32-bit-unsafe struct offsets
//   - floatorder: floating-point accumulation fed by map iteration order
//   - droppederr: discarded error returns in the CLIs and the runner
//   - resetcoverage: every field of an //icrvet:pooled type must be
//     assigned in its Reset or be declared //icrvet:persistent — a missed
//     field is cross-run state contamination through the instance pool
//   - allocfree: no allocation-inducing constructs in functions statically
//     reachable from the simulator's steady-state loop
//   - wirecoverage: config and report structs must be covered by all three
//     codecs that have to agree (KeyFor, the metrics JSON schema, the
//     cluster wire codec)
//   - ctxflow: context.Context plumbing discipline in the serving and
//     cluster layers
//
// Findings can be suppressed with a justified directive on the flagged
// line or the line above:
//
//	//icrvet:ignore <pass>[,<pass>...] <reason>
//
// A malformed directive (unknown pass, missing reason) is itself a finding
// and cannot be suppressed — and so is a directive that suppresses
// nothing: stale suppressions rot into blanket permission slips unless
// they are forced to justify their existence on every run.
package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// A Finding is one diagnostic: a position, the pass that produced it, and
// a message.
type Finding struct {
	Pass    string
	Pos     token.Position
	Message string
}

// String renders the finding as "path:line:col: [pass] message" with the
// path relative to root (when possible) using forward slashes.
func (f Finding) String() string {
	return f.Relative("")
}

// Relative renders the finding with its file path relative to root.
func (f Finding) Relative(root string) string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s",
		relName(root, f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Pass, f.Message)
}

// relName renders a file path relative to root (when possible) with
// forward slashes.
func relName(root, name string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
	}
	return filepath.ToSlash(name)
}

// An Analysis is the shared state of one engine run: the loaded module,
// the parsed directive index, and a lazily built static call graph. It is
// read-only while passes execute, so every pass (and every per-package
// shard of a pass) can use it concurrently.
type Analysis struct {
	Mod  *Module
	opts Options
	dirs *directives

	cgOnce sync.Once
	cg     *callGraph
}

// graph returns the module's static call graph, building it on first use.
func (a *Analysis) graph() *callGraph {
	a.cgOnce.Do(func() { a.cg = buildCallGraph(a.Mod) })
	return a.cg
}

// A Pass is one analysis. Exactly one of Package and Module is set:
// Package passes are sharded one work item per package and run
// concurrently; Module passes need a whole-module view (call graph, cross-
// package struct coverage) and run as a single item alongside the shards.
type Pass struct {
	Name string
	Doc  string

	Package func(a *Analysis, pkg *Package, r *Reporter)
	Module  func(a *Analysis, r *Reporter)
}

// Passes returns the analyses in their canonical order.
func Passes() []Pass {
	return []Pass{
		{Name: "determinism", Doc: "wall-clock, global rand, and map-order dependence in hot packages", Package: runDeterminism},
		{Name: "keycoverage", Doc: "KeyFor must cover every exported config field", Module: runKeyCoverage},
		{Name: "syncmisuse", Doc: "copied locks/atomics and misaligned 64-bit atomics", Package: runSyncMisuse},
		{Name: "floatorder", Doc: "float accumulation in map-iteration order", Package: runFloatOrder},
		{Name: "droppederr", Doc: "discarded error returns in cmd/ and the runner/store/serve/cluster layers", Package: runDroppedErr},
		{Name: "resetcoverage", Doc: "pooled types must Reset every field or declare it persistent", Module: runResetCoverage},
		{Name: "allocfree", Doc: "no allocation in functions reachable from the steady-state loop", Module: runAllocFree},
		{Name: "wirecoverage", Doc: "key, wire, and schema codecs must cover every config/report field", Module: runWireCoverage},
		{Name: "ctxflow", Doc: "context.Context plumbing discipline in serving and cluster layers", Package: runCtxFlow},
	}
}

// PassNames returns the valid pass names (canonical order).
func PassNames() []string {
	ps := Passes()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// Options configures an analysis.
type Options struct {
	// Passes selects a subset of pass names; nil runs all.
	Passes []string

	// HotPaths lists the module-relative directory prefixes the
	// determinism pass polices. Nil means DefaultHotPaths. A single "*"
	// covers the whole module.
	HotPaths []string

	// ErrPaths lists the module-relative prefixes the droppederr pass
	// polices. Nil means DefaultErrPaths. A single "*" covers the whole
	// module.
	ErrPaths []string
}

// DefaultHotPaths is the simulation hot path: packages whose behaviour
// must be a pure function of (Machine, Run) for results to be reproducible
// and memoizable. The cluster layer is included because a wall-clock or
// global-rand dependence there breaks the byte-identical fleet/single-node
// equivalence the cluster smoke test asserts.
func DefaultHotPaths() []string {
	return []string{
		"internal/sim", "internal/cpu", "internal/cache",
		"internal/experiments", "internal/reliability", "internal/energy",
		"internal/metrics",
		"internal/branch", "internal/ecc", "internal/rcache",
		"internal/fault", "internal/isa", "internal/config",
		"internal/cluster", "internal/adapt",
	}
}

// DefaultErrPaths is where droppederr applies: the CLIs (exit paths must
// observe failures), the parallel runner (a swallowed error there turns
// into a silently wrong figure), the persistent result store (a swallowed
// I/O error turns into silent data loss), the HTTP serving layer (a
// swallowed error turns into a wrong response), the cluster fleet (a
// swallowed error there turns into a lost task or a silently incomplete
// sweep), and the model packages themselves — a swallowed error in branch
// or fault construction turns into a silently misconfigured simulation.
func DefaultErrPaths() []string {
	return []string{
		"cmd", "internal/runner", "internal/store", "internal/serve",
		"internal/cluster", "internal/adapt",
		"internal/branch", "internal/ecc", "internal/rcache",
		"internal/fault", "internal/isa", "internal/config",
	}
}

// Analyze loads the module at or above dir and runs the selected passes,
// returning the surviving (unsuppressed) findings sorted by position.
// Malformed or unused suppression directives are reported under the
// "directive" pseudo-pass.
func Analyze(dir string, opts Options) ([]Finding, error) {
	mod, err := Load(dir)
	if err != nil {
		return nil, err
	}
	return Run(mod, opts)
}

// workItem is one schedulable unit: a package shard of a Package pass, or
// the single whole-module item of a Module pass.
type workItem struct {
	pass Pass
	pkg  *Package // nil for Module passes
}

// Run executes the selected passes over an already loaded module. Work is
// sharded per (pass, package) and runs on up to GOMAXPROCS goroutines;
// each shard reports into its own Reporter and the shards are merged and
// sorted at the end, so the output is independent of scheduling.
func Run(mod *Module, opts Options) ([]Finding, error) {
	selected, err := selectPasses(opts.Passes)
	if err != nil {
		return nil, err
	}
	a := &Analysis{Mod: mod, opts: opts, dirs: collectDirectives(mod)}

	var items []workItem
	for _, p := range selected {
		if p.Package != nil {
			for _, pkg := range mod.Packages {
				items = append(items, workItem{pass: p, pkg: pkg})
			}
		} else {
			items = append(items, workItem{pass: p})
		}
	}

	shards := make([]*Reporter, len(items))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, it := range items {
		wg.Add(1)
		go func(i int, it workItem) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r := &Reporter{
				mod: mod, opts: opts, pass: it.pass.Name,
				dirs: a.dirs, used: make(map[*directive]bool),
			}
			shards[i] = r
			if it.pkg != nil {
				it.pass.Package(a, it.pkg, r)
			} else {
				it.pass.Module(a, r)
			}
		}(i, it)
	}
	wg.Wait()

	var findings []Finding
	used := make(map[*directive]bool)
	for _, r := range shards {
		findings = append(findings, r.findings...)
		for d := range r.used {
			used[d] = true
		}
	}
	findings = append(findings, a.dirs.problems...)
	findings = append(findings, unusedDirectives(a.dirs, selected, used)...)

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		return a.Message < b.Message
	})
	return findings, nil
}

// unusedDirectives flags every suppression that suppressed nothing. A
// directive is only judged when every pass it names actually ran this
// invocation — running a single pass with -passes must not condemn the
// suppressions that belong to the others.
func unusedDirectives(dirs *directives, selected []Pass, used map[*directive]bool) []Finding {
	ran := make(map[string]bool, len(selected))
	for _, p := range selected {
		ran[p.Name] = true
	}
	var out []Finding
	for _, d := range dirs.all {
		if used[d] {
			continue
		}
		judgeable := true
		for _, p := range d.passes {
			if !ran[p] {
				judgeable = false
				break
			}
		}
		if !judgeable {
			continue
		}
		out = append(out, Finding{
			Pass: "directive", Pos: d.pos,
			Message: fmt.Sprintf("//icrvet:ignore %s suppresses nothing: no such finding on this or the next line; delete the stale directive",
				strings.Join(d.passes, ",")),
		})
	}
	return out
}

func selectPasses(names []string) ([]Pass, error) {
	all := Passes()
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]Pass, len(all))
	for _, p := range all {
		byName[p.Name] = p
	}
	var out []Pass
	for _, n := range names {
		p, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("lint: unknown pass %q (have %s)",
				n, strings.Join(PassNames(), ", "))
		}
		out = append(out, p)
	}
	return out, nil
}

// Reporter collects findings for one work item (one pass over one package,
// or one module-level pass) and applies suppression directives. Each shard
// has its own Reporter, so passes never contend on it.
type Reporter struct {
	mod      *Module
	opts     Options
	pass     string
	findings []Finding
	dirs     *directives
	used     map[*directive]bool
}

// Reportf records a finding for the current pass at pos unless a valid
// directive suppresses it, in which case the directive is marked used.
func (r *Reporter) Reportf(pos token.Pos, format string, args ...any) {
	p := r.mod.Fset.Position(pos)
	if ds := r.dirs.suppressing(r.pass, p); len(ds) > 0 {
		for _, d := range ds {
			r.used[d] = true
		}
		return
	}
	r.findings = append(r.findings, Finding{Pass: r.pass, Pos: p, Message: fmt.Sprintf(format, args...)})
}

// hotPaths resolves the determinism scope.
func (r *Reporter) hotPaths() []string {
	if r.opts.HotPaths != nil {
		return r.opts.HotPaths
	}
	return DefaultHotPaths()
}

// errPaths resolves the droppederr scope.
func (r *Reporter) errPaths() []string {
	if r.opts.ErrPaths != nil {
		return r.opts.ErrPaths
	}
	return DefaultErrPaths()
}

// inScope reports whether a package's module-relative directory falls under
// one of the given prefixes ("*" matches everything).
func inScope(rel string, prefixes []string) bool {
	for _, p := range prefixes {
		if p == "*" {
			return true
		}
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}
