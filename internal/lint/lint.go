// Package lint is icrvet's analysis engine: a standard-library-only static
// analyzer (go/ast, go/parser, go/types) that enforces the repository's
// determinism and concurrency invariants. Five passes run over the whole
// module:
//
//   - determinism: wall-clock time, global math/rand, and order-dependent
//     map iteration in the simulation hot path
//   - keycoverage: runner.KeyFor must reference every exported field of its
//     input configuration structs (transitively), so a new config knob
//     cannot silently alias distinct runs in the memo cache
//   - syncmisuse: by-value copies of lock- or atomic-bearing structs, and
//     64-bit atomics at 32-bit-unsafe struct offsets
//   - floatorder: floating-point accumulation fed by map iteration order
//   - droppederr: discarded error returns in the CLIs and the runner
//
// Findings can be suppressed with a justified directive on the flagged
// line or the line above:
//
//	//icrvet:ignore <pass>[,<pass>...] <reason>
//
// A malformed directive (unknown pass, missing reason) is itself a finding
// and cannot be suppressed.
package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// A Finding is one diagnostic: a position, the pass that produced it, and
// a message.
type Finding struct {
	Pass    string
	Pos     token.Position
	Message string
}

// String renders the finding as "path:line:col: [pass] message" with the
// path relative to root (when possible) using forward slashes.
func (f Finding) String() string {
	return f.Relative("")
}

// Relative renders the finding with its file path relative to root.
func (f Finding) Relative(root string) string {
	name := f.Pos.Filename
	if root != "" {
		if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
	}
	return fmt.Sprintf("%s:%d:%d: [%s] %s",
		filepath.ToSlash(name), f.Pos.Line, f.Pos.Column, f.Pass, f.Message)
}

// A Pass is one analysis over a loaded module.
type Pass struct {
	Name string
	Doc  string
	Run  func(m *Module, r *Reporter)
}

// Passes returns the five analyses in their canonical order.
func Passes() []Pass {
	return []Pass{
		{Name: "determinism", Doc: "wall-clock, global rand, and map-order dependence in hot packages", Run: runDeterminism},
		{Name: "keycoverage", Doc: "KeyFor must cover every exported config field", Run: runKeyCoverage},
		{Name: "syncmisuse", Doc: "copied locks/atomics and misaligned 64-bit atomics", Run: runSyncMisuse},
		{Name: "floatorder", Doc: "float accumulation in map-iteration order", Run: runFloatOrder},
		{Name: "droppederr", Doc: "discarded error returns in cmd/ and internal/runner", Run: runDroppedErr},
	}
}

// PassNames returns the valid pass names (canonical order).
func PassNames() []string {
	ps := Passes()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// Options configures an analysis.
type Options struct {
	// Passes selects a subset of pass names; nil runs all five.
	Passes []string

	// HotPaths lists the module-relative directory prefixes the
	// determinism pass polices. Nil means DefaultHotPaths. A single "*"
	// covers the whole module.
	HotPaths []string

	// ErrPaths lists the module-relative prefixes the droppederr pass
	// polices. Nil means DefaultErrPaths. A single "*" covers the whole
	// module.
	ErrPaths []string
}

// DefaultHotPaths is the simulation hot path: packages whose behaviour
// must be a pure function of (Machine, Run) for results to be reproducible
// and memoizable.
func DefaultHotPaths() []string {
	return []string{
		"internal/sim", "internal/cpu", "internal/cache",
		"internal/experiments", "internal/reliability", "internal/energy",
		"internal/metrics",
	}
}

// DefaultErrPaths is where droppederr applies: the CLIs (exit paths must
// observe failures), the parallel runner (a swallowed error there turns
// into a silently wrong figure), the persistent result store (a swallowed
// I/O error turns into silent data loss), the HTTP serving layer (a
// swallowed error turns into a wrong response), and the cluster fleet (a
// swallowed error there turns into a lost task or a silently incomplete
// sweep).
func DefaultErrPaths() []string {
	return []string{"cmd", "internal/runner", "internal/store", "internal/serve", "internal/cluster"}
}

// Analyze loads the module at or above dir and runs the selected passes,
// returning the surviving (unsuppressed) findings sorted by position.
// Malformed or unused suppression directives are reported under the
// "directive" pseudo-pass.
func Analyze(dir string, opts Options) ([]Finding, error) {
	mod, err := Load(dir)
	if err != nil {
		return nil, err
	}
	return Run(mod, opts)
}

// Run executes the selected passes over an already loaded module.
func Run(mod *Module, opts Options) ([]Finding, error) {
	selected, err := selectPasses(opts.Passes)
	if err != nil {
		return nil, err
	}
	r := newReporter(mod, opts)
	for _, p := range selected {
		r.pass = p.Name
		p.Run(mod, r)
	}
	r.finish()
	sort.Slice(r.findings, func(i, j int) bool {
		a, b := r.findings[i], r.findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		return a.Message < b.Message
	})
	return r.findings, nil
}

func selectPasses(names []string) ([]Pass, error) {
	all := Passes()
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]Pass, len(all))
	for _, p := range all {
		byName[p.Name] = p
	}
	var out []Pass
	for _, n := range names {
		p, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("lint: unknown pass %q (have %s)",
				n, strings.Join(PassNames(), ", "))
		}
		out = append(out, p)
	}
	return out, nil
}

// Reporter collects findings and applies suppression directives.
type Reporter struct {
	mod      *Module
	opts     Options
	pass     string
	findings []Finding
	supp     *suppressions
}

func newReporter(mod *Module, opts Options) *Reporter {
	return &Reporter{mod: mod, opts: opts, supp: collectSuppressions(mod)}
}

// Reportf records a finding for the current pass at pos unless a valid
// directive suppresses it.
func (r *Reporter) Reportf(pos token.Pos, format string, args ...any) {
	p := r.mod.Fset.Position(pos)
	if r.supp.suppressed(r.pass, p) {
		return
	}
	r.findings = append(r.findings, Finding{Pass: r.pass, Pos: p, Message: fmt.Sprintf(format, args...)})
}

// hotPaths resolves the determinism scope.
func (r *Reporter) hotPaths() []string {
	if r.opts.HotPaths != nil {
		return r.opts.HotPaths
	}
	return DefaultHotPaths()
}

// errPaths resolves the droppederr scope.
func (r *Reporter) errPaths() []string {
	if r.opts.ErrPaths != nil {
		return r.opts.ErrPaths
	}
	return DefaultErrPaths()
}

// inScope reports whether a package's module-relative directory falls under
// one of the given prefixes ("*" matches everything).
func inScope(rel string, prefixes []string) bool {
	for _, p := range prefixes {
		if p == "*" {
			return true
		}
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// finish appends the directive findings (malformed suppressions) collected
// during the run.
func (r *Reporter) finish() {
	r.findings = append(r.findings, r.supp.problems...)
}
