package lint

import (
	"encoding/json"
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
)

// runWireCoverage verifies that the three codecs which must agree on the
// configuration and report surface actually cover it, turning the runtime
// drift tripwires into a static gate:
//
//  1. The cluster wire codec: every field that is JSON-visible under
//     cluster.Spec (after the wire wrappers' shadowing is resolved with
//     encoding/json's embedding rules) must be statically JSON-encodable —
//     a func-, chan-, or interface-typed field that leaks into the wire
//     format would marshal as null or fail at runtime, on a worker, mid-
//     sweep. Conversely every field the wrappers shadow OUT of the wire
//     format must be referenced by EncodeSpec, DecodeSpec, or KeyFor: the
//     codec has to either translate it (wireHints) or refuse to ship runs
//     that set it (KeyFor's EachCycle/Halt nil-checks). An unreferenced
//     shadowed field is a knob that silently vanishes in distributed runs.
//  2. The metrics JSON schema: every JSON-visible field of metrics.Report
//     (and the structs it nests) must appear as a key in the committed
//     schema goldens (internal/metrics/testdata/report_schema*.json), so a
//     new counter cannot ship without the serving/storage schema test
//     seeing it.
//
// The third codec, KeyFor's hash coverage, is enforced field-by-field by
// the keycoverage pass; this pass closes the loop by letting KeyFor
// references double as the refusal gate for shadowed wire fields.
func runWireCoverage(a *Analysis, r *Reporter) {
	refs := codecRefs(a)
	wireLeg(a, r, refs)
	schemaLeg(a, r)
}

// codecRefs unions the field references of every codec function — any
// module-level EncodeSpec, DecodeSpec (method or function), or KeyFor —
// gathered transitively through same-package helpers.
func codecRefs(a *Analysis) map[string]bool {
	refs := make(map[string]bool)
	for _, pkg := range a.Mod.Packages {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				switch fd.Name.Name {
				case "EncodeSpec", "DecodeSpec", keyFuncName:
					for k := range coveredFields(pkg, fd) {
						refs[k] = true
					}
				}
			}
		}
	}
	return refs
}

// wireSpecType locates the cluster wire codec's root struct.
func wireSpecType(mod *Module) *types.Named {
	pkg := mod.Lookup("internal/cluster")
	if pkg == nil {
		return nil
	}
	tn, ok := pkg.Types.Scope().Lookup("Spec").(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

// wireLeg checks visibility and encodability under cluster.Spec.
func wireLeg(a *Analysis, r *Reporter, refs map[string]bool) {
	spec := wireSpecType(a.Mod)
	if spec == nil {
		return
	}
	seen := make(map[*types.Named]bool)
	var visit func(named *types.Named)
	visit = func(named *types.Named) {
		if seen[named] {
			return
		}
		seen[named] = true
		winners, shadowed := jsonEffectiveFields(named)
		for _, w := range winners {
			if bad := unencodablePart(a.Mod, w.f.Type()); bad != "" {
				r.Reportf(w.f.Pos(),
					"field %s is JSON-visible under cluster.Spec but contains %s, which does not marshal; shadow it in the wire wrapper and refuse or translate it in the codec",
					fieldKey(w.owner, w.f.Name()), bad)
			}
			for _, sub := range namedStructsIn(w.f.Type()) {
				if inModule(a.Mod, sub) {
					visit(sub)
				}
			}
		}
		for _, s := range shadowed {
			if !refs[fieldKey(s.owner, s.f.Name())] {
				r.Reportf(s.f.Pos(),
					"field %s is shadowed out of the cluster wire format but no codec (EncodeSpec, DecodeSpec, KeyFor) references it: the knob would silently vanish on distributed runs; translate it or nil-check and refuse",
					fieldKey(s.owner, s.f.Name()))
			}
		}
	}
	visit(spec)
}

// jsonField is one candidate field in a struct's JSON encoding.
type jsonField struct {
	name   string // wire name (tag name or Go name)
	f      *types.Var
	owner  *types.Named
	depth  int
	tagged bool
}

// jsonEffectiveFields resolves one struct's JSON field set under
// encoding/json's embedding rules: fields of embedded structs promote one
// depth down, the shallowest candidate for a name wins, a tagged candidate
// beats untagged at equal depth, and a tie drops the name entirely (those
// candidates are reported as shadowed too — they don't marshal).
func jsonEffectiveFields(root *types.Named) (winners, shadowed []jsonField) {
	byName := make(map[string][]jsonField)
	var order []string
	type item struct {
		named *types.Named
		depth int
	}
	queue := []item{{root, 0}}
	visited := map[*types.Named]bool{root: true}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		st, ok := it.named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			tag := reflect.StructTag(st.Tag(i)).Get("json")
			tagName, _, _ := strings.Cut(tag, ",")
			if tagName == "-" {
				continue
			}
			if f.Anonymous() && tagName == "" {
				if sub := asNamedStruct(f.Type()); sub != nil {
					if !visited[sub] {
						visited[sub] = true
						queue = append(queue, item{sub, it.depth + 1})
					}
					continue
				}
			}
			if !f.Exported() {
				continue
			}
			jf := jsonField{name: tagName, f: f, owner: it.named, depth: it.depth, tagged: tagName != ""}
			if jf.name == "" {
				jf.name = f.Name()
			}
			if _, ok := byName[jf.name]; !ok {
				order = append(order, jf.name)
			}
			byName[jf.name] = append(byName[jf.name], jf)
		}
	}
	for _, nm := range order {
		cands := byName[nm]
		minDepth := cands[0].depth
		for _, c := range cands {
			if c.depth < minDepth {
				minDepth = c.depth
			}
		}
		var atMin []jsonField
		for _, c := range cands {
			if c.depth == minDepth {
				atMin = append(atMin, c)
			}
		}
		winner := -1
		if len(atMin) == 1 {
			winner = 0
		} else {
			taggedAt := -1
			taggedCount := 0
			for i, c := range atMin {
				if c.tagged {
					taggedCount++
					taggedAt = i
				}
			}
			if taggedCount == 1 {
				winner = taggedAt
			}
		}
		for _, c := range cands {
			if winner >= 0 && c == atMin[winner] {
				winners = append(winners, c)
			} else {
				shadowed = append(shadowed, c)
			}
		}
	}
	return winners, shadowed
}

// unencodablePart returns a description of the first statically
// un-marshalable component of t ("" when t is JSON-encodable). Interfaces
// count as unencodable: even when the dynamic value would marshal, the
// decoder cannot reconstruct it, so interface-typed knobs must be
// translated through a concrete wire representation. In-module named
// structs are skipped here — the wire walk visits them with the JSON
// shadowing rules applied, so a wrapper's shadow fields are not
// double-reported through the raw embedded struct.
func unencodablePart(mod *Module, t types.Type) string {
	return unencodableWalk(mod, t, make(map[types.Type]bool))
}

func unencodableWalk(mod *Module, t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	if named := asNamedStruct(t); named != nil && inModule(mod, named) {
		return "" // visited separately with shadowing resolved
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		if u.Kind() == types.UnsafePointer || u.Kind() == types.Complex64 || u.Kind() == types.Complex128 {
			return "a " + u.String() + " value"
		}
		return ""
	case *types.Signature:
		return "a func value"
	case *types.Chan:
		return "a channel"
	case *types.Interface:
		return "an interface value (the decoder cannot rebuild the dynamic type)"
	case *types.Pointer:
		return unencodableWalk(mod, u.Elem(), seen)
	case *types.Slice:
		return unencodableWalk(mod, u.Elem(), seen)
	case *types.Array:
		return unencodableWalk(mod, u.Elem(), seen)
	case *types.Map:
		if bad := unencodableWalk(mod, u.Elem(), seen); bad != "" {
			return bad
		}
		return ""
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			tag := reflect.StructTag(u.Tag(i)).Get("json")
			tagName, _, _ := strings.Cut(tag, ",")
			if tagName == "-" || (!f.Exported() && !f.Anonymous()) {
				continue
			}
			if bad := unencodableWalk(mod, f.Type(), seen); bad != "" {
				return bad
			}
		}
		return ""
	}
	return ""
}

// namedStructsIn collects the named struct types inside t (through
// pointers, slices, arrays, and map values) for wire-walk descent.
func namedStructsIn(t types.Type) []*types.Named {
	var out []*types.Named
	var walk func(t types.Type, depth int)
	walk = func(t types.Type, depth int) {
		if depth > 8 {
			return
		}
		if named := asNamedStruct(t); named != nil {
			out = append(out, named)
			return
		}
		switch u := t.Underlying().(type) {
		case *types.Pointer:
			walk(u.Elem(), depth+1)
		case *types.Slice:
			walk(u.Elem(), depth+1)
		case *types.Array:
			walk(u.Elem(), depth+1)
		case *types.Map:
			walk(u.Elem(), depth+1)
		}
	}
	walk(t, 0)
	return out
}

// schemaLeg checks metrics.Report (and everything it nests) against the
// committed schema goldens.
func schemaLeg(a *Analysis, r *Reporter) {
	pkg := a.Mod.Lookup("internal/metrics")
	if pkg == nil {
		return
	}
	tn, ok := pkg.Types.Scope().Lookup("Report").(*types.TypeName)
	if !ok {
		return
	}
	report, ok := tn.Type().(*types.Named)
	if !ok {
		return
	}
	if _, ok := report.Underlying().(*types.Struct); !ok {
		return
	}

	keys, files, err := loadSchemaKeys(pkg.Dir)
	if err != nil {
		r.Reportf(tn.Pos(), "cannot read schema goldens for metrics.Report: %v", err)
		return
	}
	if len(files) == 0 {
		r.Reportf(tn.Pos(),
			"metrics.Report has no schema golden (internal/metrics/testdata/report_schema*.json): the wire schema is unpinned")
		return
	}

	seen := make(map[*types.Named]bool)
	var visit func(named *types.Named)
	visit = func(named *types.Named) {
		if seen[named] {
			return
		}
		seen[named] = true
		winners, _ := jsonEffectiveFields(named)
		for _, w := range winners {
			if !keys[w.name] {
				r.Reportf(w.f.Pos(),
					"field %s (JSON key %q) is missing from the schema goldens (%s): regenerate them so the schema test pins the new field",
					fieldKey(w.owner, w.f.Name()), w.name, strings.Join(files, ", "))
			}
			for _, sub := range namedStructsIn(w.f.Type()) {
				if inModule(a.Mod, sub) {
					visit(sub)
				}
			}
		}
	}
	visit(report)
}

// loadSchemaKeys reads every testdata/report_schema*.json under dir and
// returns the union of all object keys at any nesting depth.
func loadSchemaKeys(dir string) (keys map[string]bool, files []string, err error) {
	matches, err := filepath.Glob(filepath.Join(dir, "testdata", "report_schema*.json"))
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(matches)
	keys = make(map[string]bool)
	for _, m := range matches {
		data, err := os.ReadFile(m)
		if err != nil {
			return nil, nil, err
		}
		var doc any
		if err := json.Unmarshal(data, &doc); err != nil {
			return nil, nil, err
		}
		collectKeys(doc, keys)
		files = append(files, filepath.Base(m))
	}
	return keys, files, nil
}

// collectKeys walks a decoded JSON value collecting every object key.
func collectKeys(doc any, keys map[string]bool) {
	switch doc := doc.(type) {
	case map[string]any:
		for k, v := range doc {
			keys[k] = true
			collectKeys(v, keys)
		}
	case []any:
		for _, v := range doc {
			collectKeys(v, keys)
		}
	}
}
