// Package pool seeds the resetcoverage descent case: the pooled root's
// own Reset is complete, but a component it owns has an incomplete Reset
// of its own.
package pool

// Root owns a resettable component.
//
//icrvet:pooled the fixture's fully covered root
type Root struct {
	runs int
	comp *Component
}

// Reset covers every field Root owns directly.
func (r *Root) Reset() {
	r.runs = 0
	r.comp.Reset()
}

// Component is reached by descent: it has a Reset method, so its own
// coverage is checked even though Root already handles the field.
type Component struct {
	hits  uint64
	stale uint64 // Reset forgets this one
}

// Reset forgets stale.
func (c *Component) Reset() {
	c.hits = 0
}

// Touch keeps stale referenced outside Reset.
func (c *Component) Touch() { c.stale++ }
