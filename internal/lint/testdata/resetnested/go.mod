module fixnested

go 1.22
