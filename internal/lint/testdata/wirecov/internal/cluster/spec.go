// Package cluster seeds wirecoverage's wire-leg violations: a shadowed
// field no codec references, and an unencodable type leaking into the
// JSON-visible surface.
package cluster

// Inner is the config struct the wire wrapper embeds.
type Inner struct {
	Hook  func() `json:"hook"`
	Value int    `json:"value"`
}

// wrapper shadows Hook out of the wire format, but no EncodeSpec,
// DecodeSpec, or KeyFor references Inner.Hook: the knob silently
// vanishes on the wire.
type wrapper struct {
	Inner
	Hook string `json:"hook"`
}

// Spec is the wire codec root.
type Spec struct {
	W  wrapper
	Ch chan int
}
