module fixwire

go 1.22
