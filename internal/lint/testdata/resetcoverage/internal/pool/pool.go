// Package pool seeds resetcoverage violations: a pooled struct whose
// Reset forgets a field, a pooled type with no Reset method at all, and a
// pooled non-struct.
package pool

// Arena is the pooled root. Reset covers buf and clock, gen is declared
// persistent, but leak is neither.
//
//icrvet:pooled the fixture's arena root
type Arena struct {
	buf   []byte
	clock uint64
	gen   int //icrvet:persistent construction-determined in this fixture
	leak  map[string]int
}

// Reset clears the covered fields through a helper but forgets leak.
func (a *Arena) Reset() {
	a.buf = a.buf[:0]
	a.clearClock()
}

// clearClock proves coverage is gathered transitively through
// same-package helpers.
func (a *Arena) clearClock() {
	a.clock = 0
}

// NoReset carries every field across runs.
//
//icrvet:pooled seeded violation: no Reset method
type NoReset struct {
	state int
}

// State keeps the field referenced.
func (n *NoReset) State() int { return n.state }

// Handle is pooled but not a struct.
//
//icrvet:pooled seeded violation: not a struct
type Handle int
