module fixreset

go 1.22
