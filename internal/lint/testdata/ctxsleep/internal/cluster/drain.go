// Package cluster seeds the uncancellable-sleep violation: a bare
// time.Sleep inside a context-carrying function in the fleet layer.
package cluster

import (
	"context"
	"time"
)

// Drain carries a context but stalls with a sleep cancellation cannot
// interrupt.
func Drain(ctx context.Context) {
	time.Sleep(50 * time.Millisecond)
	<-ctx.Done()
}
