// Package store seeds the uncancellable-sleep violation in the shard
// layer: a claim-wait poll that sleeps instead of selecting on the
// context, so a draining front end stalls for the full backoff.
package store

import (
	"context"
	"time"
)

// WaitClaim polls a claim but backs off with a sleep cancellation cannot
// interrupt.
func WaitClaim(ctx context.Context) error {
	for i := 0; i < 3; i++ {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		time.Sleep(25 * time.Millisecond)
	}
	return nil
}
