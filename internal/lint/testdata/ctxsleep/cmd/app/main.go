// Command app shows the cmd/ exemption: a root context is legal at the
// program's entry point.
package main

import "context"

func main() {
	_ = context.Background()
}
