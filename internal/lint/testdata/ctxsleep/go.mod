module fixsleep

go 1.22
