module fixctx

go 1.22
