// Package serve seeds ctxflow's ordering, storage, and root-context
// violations.
package serve

import "context"

// Session stores a context, decoupling the work from its canceller.
type Session struct {
	ctx context.Context
	id  int
}

// ID keeps the fields referenced.
func (s *Session) ID() int { return s.id }

// Lookup takes its context second instead of first.
func Lookup(id int, ctx context.Context) int {
	_ = ctx
	return id
}

// Detach conjures a root context outside cmd/.
func Detach() context.Context {
	return context.Background()
}
