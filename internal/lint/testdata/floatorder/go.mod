module fixfloat

go 1.22
