// Package fixfloat is a floatorder-pass fixture: float accumulation fed by
// map iteration order, in both spellings, plus the sorted-keys fix.
package fixfloat

import "sort"

// Sum accumulates with += under map iteration.
func Sum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want: += under map range
	}
	return sum
}

// SumSpelled accumulates with the spelled-out x = x + v form.
func SumSpelled(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total = total + v // want: x = x + v under map range
	}
	return total
}

// MeanField accumulates into a struct field.
type acc struct{ total float64 }

// Fold accumulates into a selector lvalue.
func Fold(m map[int]float64, a *acc) {
	for _, v := range m {
		a.total = v + a.total // want: selector accumulation under map range
	}
}

// SumInts is fine: integer addition is associative.
func SumInts(m map[string]int) int {
	var sum int
	for _, v := range m {
		sum += v
	}
	return sum
}

// SumSorted is the fix: accumulate in sorted key order.
func SumSorted(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}
