// Package fixsync is a syncmisuse-pass fixture: lock-bearing values copied
// every way the pass knows, plus a misaligned 64-bit atomic.
package fixsync

import (
	"sync"
	"sync/atomic"
)

// Counter embeds a mutex: any by-value copy forks the lock.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Wrapper embeds Counter a level down: containment is transitive.
type Wrapper struct {
	inner Counter
}

// Inc is correct: pointer receiver.
func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Get has a by-value receiver: every call copies the mutex.
func (c Counter) Get() int { // want: by-value receiver
	return c.n
}

// Consume passes a lock-bearing struct by value.
func Consume(c Counter) int { // want: by-value parameter
	return c.n
}

// Make returns a lock-bearing struct by value.
func Make() Counter { // want: by-value result
	return Counter{}
}

// Copies copies lock-bearing values through assignment and range.
func Copies(ws []Wrapper, w *Wrapper) {
	local := *w // want: assignment copies
	_ = local
	for _, v := range ws { // want: range value copies
		_ = v
	}
	for i := range ws { // fine: index-only range
		_ = i
	}
	fresh := Wrapper{} // fine: composite literal is a fresh value
	_ = fresh
}

// Stats has a 64-bit counter at offset 4 under 32-bit layout.
type Stats struct {
	flags uint32
	hits  uint64 // misaligned on 32-bit targets
	safe  atomic.Uint64
}

// Bump does a 64-bit atomic on the misaligned field.
func Bump(s *Stats) {
	atomic.AddUint64(&s.hits, 1) // want: misaligned 64-bit atomic
	s.safe.Add(1)                // fine: atomic.Uint64 self-aligns
	_ = s.flags
}
