module fixsync

go 1.22
