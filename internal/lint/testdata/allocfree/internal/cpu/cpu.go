// Package cpu seeds allocfree violations reachable from the implicit
// steady-state root, (*Core).Run.
package cpu

import "fmt"

// Core mirrors the real simulator's cycle-loop owner.
type Core struct {
	scratch []int
	last    string
	n       int
}

// Run is the allocfree root. The scratch-reuse append is sanctioned; the
// violations live one call down.
func (c *Core) Run() {
	c.scratch = append(c.scratch[:0], c.n)
	c.step()
}

// step allocates in four seeded ways.
func (c *Core) step() {
	buf := make([]int, 8)
	out := append(buf, c.n)
	_ = out
	c.last = fmt.Sprintf("cycle %d", c.n)
	hot := []int{1, 2, 3}
	_ = hot
}
