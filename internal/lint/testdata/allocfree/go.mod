module fixalloc

go 1.22
