module fixkey

go 1.22
