// Package config holds the fixture's machine and run parameters.
package config

// Core is a nested parameter block (stands in for cpu.Config).
type Core struct {
	Width  int
	Depth  int
	Secret int // KeyFor misses this nested field
}

// Machine is the first KeyFor parameter.
type Machine struct {
	Core      Core
	CacheSize int
	unkeyed   int // unexported: exempt from coverage
}

// Run is the second KeyFor parameter.
type Run struct {
	Benchmark string
	Seed      int64
	Budget    uint64 // KeyFor misses this top-level field
	Hook      func() // func field: must at least be nil-checked
}
