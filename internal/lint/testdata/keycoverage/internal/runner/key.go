// Package runner holds the fixture's incomplete key serializer: it skips
// Run.Budget and the nested Core.Secret, which keycoverage must flag.
package runner

import (
	"crypto/sha256"
	"encoding/binary"

	"fixkey/config"
)

// KeyFor fingerprints a (machine, run) pair — incompletely.
func KeyFor(m config.Machine, r config.Run) ([sha256.Size]byte, bool) {
	if r.Hook != nil {
		return [sha256.Size]byte{}, false
	}
	h := sha256.New()
	word := func(v uint64) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:]) //icrvet:ignore droppederr hash.Hash.Write never returns an error
	}
	word(uint64(m.Core.Width))
	word(uint64(m.Core.Depth))
	word(uint64(m.CacheSize))
	word(uint64(len(r.Benchmark)))
	word(uint64(r.Seed))
	var k [sha256.Size]byte
	h.Sum(k[:0])
	return k, true
}
