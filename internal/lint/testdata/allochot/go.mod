module fixhot

go 1.22
