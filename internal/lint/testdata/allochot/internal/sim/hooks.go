// Package sim seeds allocfree violations behind a dynamic seam: the hook
// literal is only reachable because of its //icrvet:hot annotation — no
// static call path leads to it.
package sim

// Install returns the per-cycle hook.
func Install() func(uint64) {
	//icrvet:hot fixture hook installed behind a dynamic call seam
	return func(now uint64) {
		payload := make([]byte, 8)
		_ = payload
		record(now)
	}
}

// record is reachable from the hot hook through a static call, proving
// the //icrvet:hot root re-seeds the reachability walk.
func record(now uint64) {
	seen := map[uint64]bool{}
	seen[now] = true
}
