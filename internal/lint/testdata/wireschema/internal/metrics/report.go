// Package metrics seeds wirecoverage's schema-leg violations: NewCounter
// and Energy.Leak are absent from the committed schema golden.
package metrics

// Report is the schema root.
type Report struct {
	Runs       int    `json:"runs"`
	Energy     Energy `json:"energy"`
	NewCounter int    `json:"new_counter"`
}

// Energy is nested to exercise schema descent.
type Energy struct {
	Total float64 `json:"total"`
	Leak  float64 `json:"leakage"`
}
