module fixschema

go 1.22
