// Package fixsup exercises the //icrvet:ignore directive: valid
// suppressions (trailing and line-above), malformed directives, and an
// unsuppressed finding that must survive.
package fixsup

// SumTrailing is suppressed by a trailing directive.
func SumTrailing(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //icrvet:ignore floatorder fixture demonstrates a justified trailing suppression
	}
	return sum
}

// SumAbove is suppressed by a directive on the line above.
func SumAbove(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		//icrvet:ignore floatorder fixture demonstrates a line-above suppression
		sum += v
	}
	return sum
}

// SumWrongPass has a directive naming a different pass: no suppression.
func SumWrongPass(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //icrvet:ignore droppederr wrong pass, does not cover floatorder
	}
	return sum
}

// SumMalformed carries three malformed directives plus the live finding.
func SumMalformed(m map[string]float64) float64 {
	var sum float64
	//icrvet:ignore
	//icrvet:ignore nosuchpass the pass name is not one of the five
	//icrvet:ignore floatorder
	for _, v := range m {
		sum += v // want: not suppressed by any of the above
	}
	return sum
}
