module fixsup

go 1.22
