// Command app is a droppederr-pass fixture CLI.
package main

import (
	"fmt"
	"os"
	"strings"
)

func main() {
	os.Setenv("MODE", "fast") // want: discarded error
	f, err := os.Open("input.txt")
	if err != nil {
		fmt.Println("no input")
		return
	}
	defer f.Close() // fine: deferred cleanup is accepted idiom
	f.Close()       // want: discarded error
	_ = f.Close()   // fine: explicit, greppable discard

	var b strings.Builder
	b.WriteString("ok")   // fine: Builder writes never fail
	fmt.Println(b.String()) // fine: fmt print family is fire-and-forget
}
