// Package runner is the droppederr fixture's runner: a swallowed error
// here means a failed simulation silently folds into the figures.
package runner

import "os"

// Args is the fixture's run configuration; KeyFor covers it fully so the
// keycoverage pass stays quiet on this module.
type Args struct {
	Name string
}

// KeyFor fingerprints a run.
func KeyFor(a Args) string { return a.Name }

// Flush drops a write error.
func Flush(path string, data []byte) {
	os.WriteFile(path, data, 0o644) // want: discarded error
}

// cleanup is off the droppederr scope's allowlist but handled correctly.
func cleanup(path string) error {
	return os.Remove(path)
}

var _ = cleanup
