module fixerr

go 1.22
