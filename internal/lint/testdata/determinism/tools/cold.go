// Package tools is off the hot path: the same constructs are allowed here.
package tools

import (
	"math/rand"
	"time"
)

// Stamp is fine outside the hot packages.
func Stamp() int64 { return time.Now().UnixNano() }

// Roll is fine outside the hot packages.
func Roll() int { return rand.Intn(6) }
