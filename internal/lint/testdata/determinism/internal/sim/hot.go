// Package sim is a determinism-pass fixture: it sits on the hot path
// (internal/sim) and commits every sin the pass exists to catch.
package sim

import (
	"fmt"
	"math/rand"
	"os"
	"time"
)

// Stamp reads the wall clock on the hot path.
func Stamp() int64 {
	return time.Now().UnixNano() // want: time.Now
}

// Roll draws from the global math/rand source.
func Roll() int {
	return rand.Intn(6) // want: global rand
}

// SeededRoll is fine: it draws from an explicitly seeded *rand.Rand.
func SeededRoll(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}

// Collect accumulates in map-iteration order three different ways.
func Collect(m map[string]int) []string {
	var out []string
	var csv string
	for k := range m {
		out = append(out, k)    // want: append under map range
		csv += k + ","          // want: string accumulation under map range
		fmt.Fprintln(os.Stderr, k) // want: ordered write under map range
	}
	return out
}

// CollectSlice is fine: slices iterate in index order.
func CollectSlice(s []string) []string {
	var out []string
	for _, v := range s {
		out = append(out, v)
	}
	return out
}
