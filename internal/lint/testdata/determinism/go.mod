module fixdet

go 1.22
