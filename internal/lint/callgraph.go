package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// funcNode is one function body in the module: a declared function or
// method, or a function literal. Literals are their own nodes — code
// inside a closure belongs to the closure, not to the function that
// happens to contain its text — so reachability and per-function checks
// attribute every statement to the body that actually executes it.
type funcNode struct {
	pkg  *Package
	decl *ast.FuncDecl // nil for literals
	lit  *ast.FuncLit  // nil for declarations
	obj  *types.Func   // nil for literals
	line int           // source line (diagnostics for literals)

	// callees are the node's outgoing edges in deterministic first-seen
	// order: static calls, interface dispatch (over-approximated to every
	// in-module implementation), and function literals created in the
	// body (creating a closure inside a hot region is treated as making
	// it callable there).
	calleeSet map[*funcNode]bool
	callees   []*funcNode
}

// Name renders the node for diagnostics: "(*cpu.Core).Run" for methods,
// "sim.planWindows" for functions, "func literal at line N" otherwise.
func (n *funcNode) Name() string {
	if n.obj != nil {
		return relFuncName(n.obj)
	}
	return fmt.Sprintf("%s func literal at line %d", n.pkg.Types.Name(), n.line)
}

// Pos returns the node's source position.
func (n *funcNode) Pos() token.Pos {
	if n.decl != nil {
		return n.decl.Pos()
	}
	return n.lit.Pos()
}

// Body returns the node's statement block (nil for bodyless declarations).
func (n *funcNode) Body() *ast.BlockStmt {
	if n.decl != nil {
		return n.decl.Body
	}
	return n.lit.Body
}

// relFuncName renders a types.Func with a package-qualified short name:
// "(*cpu.Core).Run", "sim.planWindows".
func relFuncName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	pkgName := ""
	if fn.Pkg() != nil {
		pkgName = fn.Pkg().Name() + "."
	}
	if sig != nil && sig.Recv() != nil {
		recv := sig.Recv().Type()
		ptr := ""
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
			ptr = "*"
		}
		if named, ok := types.Unalias(recv).(*types.Named); ok {
			return fmt.Sprintf("(%s%s%s).%s", ptr, pkgName, named.Obj().Name(), fn.Name())
		}
	}
	return pkgName + fn.Name()
}

// callGraph is a static over-approximation of the module's call relation.
// Dynamic calls through plain function values (hooks, stored callbacks)
// have no callee edge — the //icrvet:hot annotation exists to re-root
// analyses on the far side of such seams.
type callGraph struct {
	mod   *Module
	nodes []*funcNode
	byObj map[*types.Func]*funcNode
	byLit map[*ast.FuncLit]*funcNode

	// named lists every named type declared in the module (deterministic
	// order), the candidate set for interface-dispatch resolution.
	named []*types.Named
}

// buildCallGraph constructs the graph for a loaded module. It is pure and
// read-only over the module, so the result can be shared across
// concurrently running passes.
func buildCallGraph(mod *Module) *callGraph {
	g := &callGraph{
		mod:   mod,
		byObj: make(map[*types.Func]*funcNode),
		byLit: make(map[*ast.FuncLit]*funcNode),
	}
	// Pass 1: create nodes for every function declaration and literal,
	// and collect the module's named types.
	for _, pkg := range mod.Packages {
		scope := pkg.Types.Scope()
		names := scope.Names() // sorted
		for _, name := range names {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok {
				if named, ok := tn.Type().(*types.Named); ok {
					g.named = append(g.named, named)
				}
			}
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				n := &funcNode{
					pkg: pkg, decl: fd, obj: obj,
					line:      mod.Fset.Position(fd.Pos()).Line,
					calleeSet: make(map[*funcNode]bool),
				}
				g.nodes = append(g.nodes, n)
				if obj != nil {
					g.byObj[obj] = n
				}
				// Literals, attributed to their innermost enclosing body.
				g.addLiterals(pkg, fd.Body)
			}
		}
	}
	// Pass 2: edges.
	for _, n := range g.nodes {
		g.addEdges(n)
	}
	return g
}

// addLiterals creates nodes for every function literal under root.
func (g *callGraph) addLiterals(pkg *Package, root ast.Node) {
	ast.Inspect(root, func(node ast.Node) bool {
		if lit, ok := node.(*ast.FuncLit); ok {
			n := &funcNode{
				pkg: pkg, lit: lit,
				line:      g.mod.Fset.Position(lit.Pos()).Line,
				calleeSet: make(map[*funcNode]bool),
			}
			g.nodes = append(g.nodes, n)
			g.byLit[lit] = n
		}
		return true
	})
}

// inspectOwn walks the node's body, skipping nested function literals
// (they are separate nodes).
func (n *funcNode) inspectOwn(fn func(ast.Node) bool) {
	body := n.Body()
	if body == nil {
		return
	}
	ast.Inspect(body, func(node ast.Node) bool {
		if lit, ok := node.(*ast.FuncLit); ok && lit != n.lit {
			return false
		}
		return fn(node)
	})
}

// addEdges computes the outgoing edges of one node.
func (g *callGraph) addEdges(n *funcNode) {
	n.inspectOwn(func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			if node != n.lit {
				// Creating a closure here: treat it as callable from here.
				n.addCallee(g.byLit[node])
			}
		case *ast.CallExpr:
			g.addCallEdges(n, node)
		}
		return true
	})
}

func (n *funcNode) addCallee(callee *funcNode) {
	if callee == nil || n.calleeSet[callee] {
		return
	}
	n.calleeSet[callee] = true
	n.callees = append(n.callees, callee)
}

// addCallEdges resolves one call expression to zero or more callees.
func (g *callGraph) addCallEdges(n *funcNode, call *ast.CallExpr) {
	pkg := n.pkg
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		n.addCallee(g.byLit[fun])
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			n.addCallee(g.byObj[fn])
		}
	case *ast.SelectorExpr:
		// Package-qualified function or a method call.
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			if sel, ok := pkg.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
				if types.IsInterface(sel.Recv()) {
					// Interface dispatch: over-approximate to every
					// in-module implementation.
					for _, impl := range g.implementations(sel.Recv(), fn) {
						n.addCallee(impl)
					}
					return
				}
			}
			n.addCallee(g.byObj[fn])
		}
	}
}

// implementations returns the nodes of every in-module concrete method
// that can stand behind a call to iface method m.
func (g *callGraph) implementations(iface types.Type, m *types.Func) []*funcNode {
	var out []*funcNode
	it, ok := iface.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	for _, named := range g.named {
		if types.IsInterface(named) {
			continue
		}
		var impl types.Type = named
		if !types.Implements(impl, it) {
			impl = types.NewPointer(named)
			if !types.Implements(impl, it) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, m.Pkg(), m.Name())
		if fn, ok := obj.(*types.Func); ok {
			if node := g.byObj[fn]; node != nil {
				out = append(out, node)
			}
		}
	}
	return out
}

// funcOf returns the node for a declared function/method, or nil.
func (g *callGraph) funcOf(fn *types.Func) *funcNode { return g.byObj[fn] }

// reachable computes the set of nodes reachable from roots, recording for
// each reached node its BFS parent so diagnostics can show one concrete
// call chain back to a root.
func (g *callGraph) reachable(roots []*funcNode) map[*funcNode]*funcNode {
	parent := make(map[*funcNode]*funcNode)
	var queue []*funcNode
	for _, r := range roots {
		if r == nil {
			continue
		}
		if _, ok := parent[r]; !ok {
			parent[r] = nil
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range n.callees {
			if _, ok := parent[c]; !ok {
				parent[c] = n
				queue = append(queue, c)
			}
		}
	}
	return parent
}

// chain renders the call path from a root to n, e.g.
// "(*cpu.Core).Run -> (*cpu.Core).commit -> (*core.Cache).Store".
func chain(parent map[*funcNode]*funcNode, n *funcNode) string {
	var names []string
	for at := n; at != nil; at = parent[at] {
		names = append(names, at.Name())
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " -> ")
}
