package lint

import (
	"encoding/json"
	"fmt"
)

// JSONVersion is the version stamped on every JSON report. Bump it when
// the shape of JSONReport changes incompatibly; CI artifacts carry the
// version so downstream tooling can refuse reports it does not understand.
const JSONVersion = 1

// JSONFinding is one finding in the machine-readable report. File is
// module-root-relative with forward slashes, matching the text renderer.
type JSONFinding struct {
	Pass    string `json:"pass"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Message string `json:"message"`
}

// JSONReport is the -json output: a versioned envelope around the
// findings, plus the pass roster so a clean report still records what ran.
type JSONReport struct {
	Version  int           `json:"version"`
	Passes   []string      `json:"passes"`
	Findings []JSONFinding `json:"findings"`
}

// NewJSONReport converts findings (already sorted by Run) into a report
// with paths relative to root. passes is the roster that ran; nil means
// all.
func NewJSONReport(root string, passes []string, findings []Finding) JSONReport {
	if len(passes) == 0 {
		passes = PassNames()
	}
	rep := JSONReport{
		Version:  JSONVersion,
		Passes:   passes,
		Findings: []JSONFinding{}, // encode as [], never null
	}
	for _, f := range findings {
		rep.Findings = append(rep.Findings, JSONFinding{
			Pass:    f.Pass,
			File:    relName(root, f.Pos.Filename),
			Line:    f.Pos.Line,
			Column:  f.Pos.Column,
			Message: f.Message,
		})
	}
	return rep
}

// Encode renders the report as indented JSON with a trailing newline.
func (rep JSONReport) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodeJSONReport parses a report produced by Encode, rejecting versions
// this build does not understand.
func DecodeJSONReport(data []byte) (JSONReport, error) {
	var rep JSONReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return JSONReport{}, err
	}
	if rep.Version != JSONVersion {
		return JSONReport{}, fmt.Errorf("lint: unsupported JSON report version %d (this build understands %d)",
			rep.Version, JSONVersion)
	}
	return rep, nil
}
