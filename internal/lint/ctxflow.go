package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// sleepPaths is where the time.Sleep rule applies: the layers that carry
// cancellable contexts across network and fleet boundaries. A bare Sleep
// in a ctx-carrying function there stalls shutdown for the full sleep —
// the SIGTERM drain tests only catch it when the timing happens to align.
var sleepPaths = []string{"internal/serve", "internal/cluster", "internal/runner", "internal/store"}

// runCtxFlow enforces context.Context plumbing discipline:
//
//   - a ctx parameter must be the first parameter (receivers aside) — Go's
//     one structural convention for cancellation, and what makes call
//     sites greppable;
//   - a Context must never be stored in a struct field: a stored context
//     outlives the request it belongs to and silently decouples work from
//     its canceller;
//   - context.Background()/TODO() belong only in cmd/ (and tests, which
//     this analyzer never loads): library code that conjures a root
//     context detaches itself from the caller's cancellation. The nil-ctx
//     compatibility seams keep their justified suppressions;
//   - no time.Sleep inside a ctx-carrying function in the serving, cluster,
//     and runner layers — sleep cannot be cancelled; select on ctx.Done()
//     with a timer instead.
func runCtxFlow(_ *Analysis, pkg *Package, r *Reporter) {
	inCmd := pkg.Rel == "cmd" || strings.HasPrefix(pkg.Rel, "cmd/")
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncType:
				checkCtxParamOrder(pkg, r, n)
			case *ast.StructType:
				checkCtxField(pkg, r, n)
			case *ast.CallExpr:
				if pkgPath, name, ok := stdFuncCall(pkg, n); ok &&
					pkgPath == "context" && (name == "Background" || name == "TODO") && !inCmd {
					r.Reportf(n.Pos(),
						"context.%s outside cmd/: library code must thread the caller's context, not conjure a root that ignores cancellation", name)
				}
			case *ast.FuncDecl:
				if inScope(pkg.Rel, sleepPaths) && funcTypeHasCtx(pkg, n.Type) && n.Body != nil {
					checkNoSleep(pkg, r, n.Body)
				}
			}
			return true
		})
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkCtxParamOrder flags a context.Context parameter that is not the
// first parameter of its function or literal.
func checkCtxParamOrder(pkg *Package, r *Reporter, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	index := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		tv, ok := pkg.Info.Types[field.Type]
		if ok && tv.Type != nil && isContextType(tv.Type) && index > 0 {
			r.Reportf(field.Pos(),
				"context.Context must be the first parameter so cancellation plumbing is uniform and greppable")
		}
		index += n
	}
}

// checkCtxField flags a struct field of type context.Context.
func checkCtxField(pkg *Package, r *Reporter, st *ast.StructType) {
	for _, field := range st.Fields.List {
		tv, ok := pkg.Info.Types[field.Type]
		if ok && tv.Type != nil && isContextType(tv.Type) {
			r.Reportf(field.Pos(),
				"context.Context stored in a struct outlives its request and hides the cancellation chain; pass it as a parameter")
		}
	}
}

// funcTypeHasCtx reports whether a signature takes a context.Context.
func funcTypeHasCtx(pkg *Package, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if tv, ok := pkg.Info.Types[field.Type]; ok && tv.Type != nil && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// checkNoSleep flags time.Sleep anywhere in a ctx-carrying function's
// body, including inside its literals: the closures inherit the enclosing
// function's obligation to remain cancellable.
func checkNoSleep(pkg *Package, r *Reporter, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkgPath, name, ok := stdFuncCall(pkg, call); ok && pkgPath == "time" && name == "Sleep" {
			r.Reportf(call.Pos(),
				"time.Sleep in a context-carrying function cannot be cancelled; select on ctx.Done() and a timer instead")
		}
		return true
	})
}
