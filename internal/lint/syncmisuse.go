package lint

import (
	"go/ast"
	"go/types"
)

// runSyncMisuse flags, module-wide:
//
//  1. by-value copies of structs that (transitively) contain sync or
//     sync/atomic types — a copied mutex deadlocks or silently stops
//     excluding, a copied atomic counter forks its value;
//  2. 64-bit sync/atomic operations on struct fields whose offset is not
//     8-byte aligned under 32-bit layout rules (the runtime only
//     guarantees 64-bit atomicity at aligned addresses on 32-bit
//     targets). Fields of type atomic.Int64/Uint64 are exempt: the
//     runtime aligns them everywhere.
func runSyncMisuse(_ *Analysis, pkg *Package, r *Reporter) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFuncSig(pkg, r, n)
			case *ast.AssignStmt:
				checkLockAssign(pkg, r, n)
			case *ast.RangeStmt:
				checkLockRange(pkg, r, n)
			case *ast.CallExpr:
				checkAtomicAlign(pkg, r, n)
			}
			return true
		})
	}
}

// containsSyncType reports whether t transitively holds a value of a named
// type from sync or sync/atomic (through struct fields and arrays, not
// through pointers, slices, or maps — those share, they don't copy).
func containsSyncType(t types.Type) bool {
	return containsSync(t, make(map[types.Type]bool))
}

func containsSync(t types.Type, seen map[types.Type]bool) bool {
	t = types.Unalias(t)
	if seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil {
			if p := pkg.Path(); p == "sync" || p == "sync/atomic" {
				return true
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsSync(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsSync(u.Elem(), seen)
	}
	return false
}

// checkFuncSig flags by-value lock-bearing parameters, results, and
// receivers.
func checkFuncSig(pkg *Package, r *Reporter, fd *ast.FuncDecl) {
	fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		if _, isPtr := types.Unalias(recv.Type()).(*types.Pointer); !isPtr && containsSyncType(recv.Type()) {
			r.Reportf(fd.Recv.List[0].Pos(),
				"method %s has a by-value receiver of type %s, which contains sync/atomic state; use a pointer receiver", fd.Name.Name, types.TypeString(recv.Type(), types.RelativeTo(pkg.Types)))
		}
	}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if _, isPtr := types.Unalias(p.Type()).(*types.Pointer); !isPtr && containsSyncType(p.Type()) {
			r.Reportf(p.Pos(),
				"parameter %s passes %s by value, copying its sync/atomic state; pass a pointer", p.Name(), types.TypeString(p.Type(), types.RelativeTo(pkg.Types)))
		}
	}
	for i := 0; i < sig.Results().Len(); i++ {
		res := sig.Results().At(i)
		if _, isPtr := types.Unalias(res.Type()).(*types.Pointer); !isPtr && containsSyncType(res.Type()) {
			pos := res.Pos()
			if !pos.IsValid() {
				pos = fd.Pos()
			}
			r.Reportf(pos,
				"%s returns %s by value, copying its sync/atomic state; return a pointer", fd.Name.Name, types.TypeString(res.Type(), types.RelativeTo(pkg.Types)))
		}
	}
}

// checkLockAssign flags assignments that copy an existing lock-bearing
// value. Composite literals and function-call results are fresh values
// (moves, not copies) and are allowed.
func checkLockAssign(pkg *Package, r *Reporter, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) {
			break
		}
		// `_ = v` evaluates and discards: nothing keeps the copy.
		if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		if !copiesValue(rhs) {
			continue
		}
		tv, ok := pkg.Info.Types[rhs]
		if !ok || !containsSyncType(tv.Type) {
			continue
		}
		r.Reportf(as.Pos(),
			"assignment copies a value of type %s, which contains sync/atomic state; use a pointer", types.TypeString(tv.Type, types.RelativeTo(pkg.Types)))
	}
}

// copiesValue reports whether evaluating e yields a copy of an existing
// addressable value (as opposed to a freshly constructed one).
func copiesValue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return copiesValue(e.X)
	}
	return false
}

// checkLockRange flags range loops whose value variable copies
// lock-bearing elements.
func checkLockRange(pkg *Package, r *Reporter, rng *ast.RangeStmt) {
	if rng.Value == nil {
		return
	}
	// `for _, v := range ...` defines v: its type lives in Defs, not
	// Types. `for _, v = range ...` reuses an existing v: Uses.
	var t types.Type
	if id, ok := rng.Value.(*ast.Ident); ok {
		if obj := pkg.Info.Defs[id]; obj != nil {
			t = obj.Type()
		} else if obj := pkg.Info.Uses[id]; obj != nil {
			t = obj.Type()
		}
	} else if tv, ok := pkg.Info.Types[rng.Value]; ok {
		t = tv.Type
	}
	if t == nil || !containsSyncType(t) {
		return
	}
	if _, isPtr := types.Unalias(t).(*types.Pointer); isPtr {
		return
	}
	r.Reportf(rng.Value.Pos(),
		"range value copies elements of type %s, which contain sync/atomic state; range over indices or pointers", types.TypeString(t, types.RelativeTo(pkg.Types)))
}

// atomic64Funcs are the sync/atomic entry points that require 8-byte
// alignment of their operand on 32-bit targets.
var atomic64Funcs = map[string]bool{
	"AddInt64": true, "AddUint64": true,
	"LoadInt64": true, "LoadUint64": true,
	"StoreInt64": true, "StoreUint64": true,
	"SwapInt64": true, "SwapUint64": true,
	"CompareAndSwapInt64": true, "CompareAndSwapUint64": true,
}

// sizes32 models the 32-bit layout the alignment check guards against.
var sizes32 = types.SizesFor("gc", "386")

// checkAtomicAlign flags atomic.XxxInt64(&s.f, ...) where f's offset in
// its enclosing struct chain is not 8-byte aligned under 32-bit layout.
func checkAtomicAlign(pkg *Package, r *Reporter, call *ast.CallExpr) {
	pkgPath, name, ok := stdFuncCall(pkg, call)
	if !ok || pkgPath != "sync/atomic" || !atomic64Funcs[name] || len(call.Args) == 0 {
		return
	}
	unary, ok := call.Args[0].(*ast.UnaryExpr)
	if !ok || unary.Op.String() != "&" {
		return
	}
	sel, ok := unary.X.(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := pkg.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	off, ok := offset32(selection)
	if !ok {
		return
	}
	if off%8 != 0 {
		r.Reportf(call.Pos(),
			"atomic.%s on field %s at 32-bit offset %d (not 8-byte aligned): 64-bit atomics fault or tear on 32-bit targets; move the field first in the struct or use atomic.Int64/Uint64", name, sel.Sel.Name, off)
	}
}

// offset32 computes the byte offset of a field selection from the start of
// its outermost struct under 32-bit sizes.
func offset32(sel *types.Selection) (int64, bool) {
	t := sel.Recv()
	var total int64
	for _, idx := range sel.Index() {
		t = types.Unalias(t)
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			// An indirection resets the base: heap allocations of 8+
			// bytes are 8-aligned even on 32-bit.
			total = 0
			t = types.Unalias(ptr.Elem())
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok || idx >= st.NumFields() {
			return 0, false
		}
		fields := make([]*types.Var, st.NumFields())
		for i := range fields {
			fields[i] = st.Field(i)
		}
		total += sizes32.Offsetsof(fields)[idx]
		t = st.Field(idx).Type()
	}
	return total, true
}
