package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// The icrvet comment vocabulary. Suppressions silence a finding with a
// justification; annotations feed facts into the analyses themselves:
//
//	//icrvet:ignore <pass>[,<pass>...] <reason>
//	//icrvet:persistent <reason>   field deliberately survives Reset (resetcoverage)
//	//icrvet:hot <reason>          function runs inside the steady-state loop
//	                               behind a dynamic call seam (allocfree root)
//	//icrvet:pooled [reason]       struct is a pooled-arena root (resetcoverage)
//
// A trailing directive applies to its own line only; a directive standing
// on a line of its own applies to the line directly below. (A trailing
// directive never leaks onto the next line: annotating one struct field
// must not silently cover the field declared under it.) The reason is
// mandatory
// except for pooled: a suppression or exemption with no justification is
// exactly the kind of reviewer-vigilance failure the analyzer replaces.
// Any other icrvet: verb is a finding — a typo like icrvet:persistant
// must fail loudly, not silently annotate nothing.
const (
	directivePrefix   = "icrvet:ignore"
	persistentPrefix  = "icrvet:persistent"
	hotPrefix         = "icrvet:hot"
	pooledPrefix      = "icrvet:pooled"
	anyDirectivePrefx = "icrvet:"
)

// directive is one parsed suppression comment.
type directive struct {
	passes []string
	reason string
	pos    token.Position
}

// parseDirective parses the text after "//" of a candidate comment line.
// ok is false when the comment is not an icrvet:ignore directive at all.
// err is non-nil when it is one but is malformed.
func parseDirective(text string) (passes []string, reason string, ok bool, err error) {
	text = strings.TrimSpace(text)
	rest, isDirective := strings.CutPrefix(text, directivePrefix)
	if !isDirective {
		return nil, "", false, nil
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		// e.g. "icrvet:ignoreX" — some other token, not this directive
		// (the unknown-verb check reports it separately).
		return nil, "", false, nil
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, "", true, fmt.Errorf("missing pass name and reason (want \"//icrvet:ignore <pass> <reason>\")")
	}
	valid := make(map[string]bool)
	for _, n := range PassNames() {
		valid[n] = true
	}
	for _, p := range strings.Split(fields[0], ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, "", true, fmt.Errorf("empty pass name in %q", fields[0])
		}
		if !valid[p] {
			return nil, "", true, fmt.Errorf("unknown pass %q (have %s)", p, strings.Join(PassNames(), ", "))
		}
		passes = append(passes, p)
	}
	reason = strings.TrimSpace(strings.Join(fields[1:], " "))
	if reason == "" {
		return nil, "", true, fmt.Errorf("missing reason: a suppression must say why the invariant does not apply")
	}
	return passes, reason, true, nil
}

// annotationKind discriminates the non-suppression directives.
type annotationKind int

const (
	annPersistent annotationKind = iota
	annHot
	annPooled
)

func (k annotationKind) String() string {
	switch k {
	case annPersistent:
		return "persistent"
	case annHot:
		return "hot"
	case annPooled:
		return "pooled"
	}
	return "?"
}

// annotation is one parsed non-suppression directive.
type annotation struct {
	kind   annotationKind
	reason string
	pos    token.Position
}

// parseAnnotation parses the text of a candidate annotation comment.
// ok is false when the comment is not an annotation directive at all.
func parseAnnotation(text string) (kind annotationKind, reason string, ok bool, err error) {
	text = strings.TrimSpace(text)
	var prefix string
	switch {
	// persistent before pooled/hot: longest-match is irrelevant here, but
	// each prefix must be checked with its own boundary rule below.
	case strings.HasPrefix(text, persistentPrefix):
		kind, prefix = annPersistent, persistentPrefix
	case strings.HasPrefix(text, hotPrefix):
		kind, prefix = annHot, hotPrefix
	case strings.HasPrefix(text, pooledPrefix):
		kind, prefix = annPooled, pooledPrefix
	default:
		return 0, "", false, nil
	}
	rest := text[len(prefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return 0, "", false, nil // some other token
	}
	reason = strings.TrimSpace(rest)
	if reason == "" && kind != annPooled {
		return kind, "", true, fmt.Errorf(
			"missing reason: //icrvet:%s must say why (want \"//icrvet:%s <reason>\")", kind, kind)
	}
	return kind, reason, true, nil
}

// knownVerb reports whether an "icrvet:..."-prefixed comment uses one of
// the defined directive verbs (possibly malformed in its arguments).
func knownVerb(text string) bool {
	verb := text[len(anyDirectivePrefx):]
	if i := strings.IndexAny(verb, " \t"); i >= 0 {
		verb = verb[:i]
	}
	switch anyDirectivePrefx + verb {
	case directivePrefix, persistentPrefix, hotPrefix, pooledPrefix:
		return true
	}
	return false
}

// directives indexes every icrvet comment in a module: suppressions by the
// lines they cover, annotations by kind and covered line, and malformed
// directives as findings.
type directives struct {
	// suppByLine maps filename -> covered line -> suppressions.
	suppByLine map[string]map[int][]*directive
	// all lists every valid suppression (for the unused check).
	all []*directive
	// annByLine maps annotation kind -> filename -> covered line.
	annByLine map[annotationKind]map[string]map[int]*annotation
	problems  []Finding
}

// collectDirectives scans all comments of all files.
func collectDirectives(mod *Module) *directives {
	s := &directives{
		suppByLine: make(map[string]map[int][]*directive),
		annByLine:  make(map[annotationKind]map[string]map[int]*annotation),
	}
	for _, pkg := range mod.Packages {
		for _, f := range pkg.Files {
			minCol := codeStartColumns(mod.Fset, f)
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pos := mod.Fset.Position(c.Pos())
					col, hasCode := minCol[pos.Line]
					s.collect(mod, c, hasCode && col < pos.Column)
				}
			}
		}
	}
	return s
}

// codeStartColumns maps each line on which a non-comment node begins to
// the smallest starting column of such a node. A comment with code
// starting before it on its line is a trailing comment.
func codeStartColumns(fset *token.FileSet, f *ast.File) map[int]int {
	cols := make(map[int]int)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return true
		}
		p := fset.Position(n.Pos())
		if c, ok := cols[p.Line]; !ok || p.Column < c {
			cols[p.Line] = p.Column
		}
		return true
	})
	return cols
}

func (s *directives) collect(mod *Module, c *ast.Comment, trailing bool) {
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	pos := mod.Fset.Position(c.Pos())

	if passes, reason, ok, err := parseDirective(text); ok {
		if err != nil {
			s.problems = append(s.problems, Finding{
				Pass: "directive", Pos: pos,
				Message: fmt.Sprintf("malformed //icrvet:ignore: %v", err),
			})
			return
		}
		d := &directive{passes: passes, reason: reason, pos: pos}
		s.all = append(s.all, d)
		lines := s.suppByLine[pos.Filename]
		if lines == nil {
			lines = make(map[int][]*directive)
			s.suppByLine[pos.Filename] = lines
		}
		// A trailing directive covers its own line; a directive on a line
		// of its own covers that (empty) line and the next.
		lines[pos.Line] = append(lines[pos.Line], d)
		if !trailing {
			lines[pos.Line+1] = append(lines[pos.Line+1], d)
		}
		return
	}

	if kind, reason, ok, err := parseAnnotation(text); ok {
		if err != nil {
			s.problems = append(s.problems, Finding{
				Pass: "directive", Pos: pos,
				Message: fmt.Sprintf("malformed //icrvet:%s: %v", kind, err),
			})
			return
		}
		byFile := s.annByLine[kind]
		if byFile == nil {
			byFile = make(map[string]map[int]*annotation)
			s.annByLine[kind] = byFile
		}
		lines := byFile[pos.Filename]
		if lines == nil {
			lines = make(map[int]*annotation)
			byFile[pos.Filename] = lines
		}
		a := &annotation{kind: kind, reason: reason, pos: pos}
		lines[pos.Line] = a
		if !trailing {
			lines[pos.Line+1] = a
		}
		return
	}

	if strings.HasPrefix(text, anyDirectivePrefx) && !knownVerb(text) {
		s.problems = append(s.problems, Finding{
			Pass: "directive", Pos: pos,
			Message: fmt.Sprintf("unknown icrvet directive %q (have ignore, persistent, hot, pooled)",
				strings.Fields(text)[0]),
		})
	}
}

// suppressing returns the directives that suppress a finding of the given
// pass at p (nil when none do).
func (s *directives) suppressing(pass string, p token.Position) []*directive {
	var out []*directive
	for _, d := range s.suppByLine[p.Filename][p.Line] {
		for _, dp := range d.passes {
			if dp == pass {
				out = append(out, d)
				break
			}
		}
	}
	return out
}

// annotationAt returns the annotation of the given kind covering
// file:line, or nil.
func (s *directives) annotationAt(kind annotationKind, p token.Position) *annotation {
	return s.annByLine[kind][p.Filename][p.Line]
}
