package lint

import (
	"fmt"
	"go/token"
	"strings"
)

// directivePrefix introduces a suppression comment:
//
//	//icrvet:ignore <pass>[,<pass>...] <reason>
//
// The directive suppresses the named passes' findings on its own line (a
// trailing comment) or on the line directly below (a comment on its own
// line). The reason is mandatory: a suppression with no justification is
// exactly the kind of reviewer-vigilance failure the analyzer replaces.
const directivePrefix = "icrvet:ignore"

// directive is one parsed suppression comment.
type directive struct {
	passes []string
	reason string
	pos    token.Position
}

// parseDirective parses the text after "//" of a candidate comment line.
// ok is false when the comment is not an icrvet directive at all. err is
// non-nil when it is one but is malformed.
func parseDirective(text string) (passes []string, reason string, ok bool, err error) {
	text = strings.TrimSpace(text)
	rest, isDirective := strings.CutPrefix(text, directivePrefix)
	if !isDirective {
		return nil, "", false, nil
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		// e.g. "icrvet:ignoreX" — some other token, not our directive.
		return nil, "", false, nil
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, "", true, fmt.Errorf("missing pass name and reason (want \"//icrvet:ignore <pass> <reason>\")")
	}
	valid := make(map[string]bool)
	for _, n := range PassNames() {
		valid[n] = true
	}
	for _, p := range strings.Split(fields[0], ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, "", true, fmt.Errorf("empty pass name in %q", fields[0])
		}
		if !valid[p] {
			return nil, "", true, fmt.Errorf("unknown pass %q (have %s)", p, strings.Join(PassNames(), ", "))
		}
		passes = append(passes, p)
	}
	reason = strings.TrimSpace(strings.Join(fields[1:], " "))
	if reason == "" {
		return nil, "", true, fmt.Errorf("missing reason: a suppression must say why the invariant does not apply")
	}
	return passes, reason, true, nil
}

// suppressions indexes every valid directive in a module by file and the
// line it covers, and records malformed directives as findings.
type suppressions struct {
	// byLine maps filename -> covered line -> directives.
	byLine   map[string]map[int][]*directive
	problems []Finding
}

// collectSuppressions scans all comments of all files.
func collectSuppressions(mod *Module) *suppressions {
	s := &suppressions{byLine: make(map[string]map[int][]*directive)}
	for _, pkg := range mod.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					passes, reason, ok, err := parseDirective(text)
					if !ok {
						continue
					}
					pos := mod.Fset.Position(c.Pos())
					if err != nil {
						s.problems = append(s.problems, Finding{
							Pass: "directive", Pos: pos,
							Message: fmt.Sprintf("malformed //icrvet:ignore: %v", err),
						})
						continue
					}
					d := &directive{passes: passes, reason: reason, pos: pos}
					lines := s.byLine[pos.Filename]
					if lines == nil {
						lines = make(map[int][]*directive)
						s.byLine[pos.Filename] = lines
					}
					// A trailing directive covers its own line; a directive
					// on a line of its own covers the next line. Covering
					// both is harmless and keeps the rule simple.
					lines[pos.Line] = append(lines[pos.Line], d)
					lines[pos.Line+1] = append(lines[pos.Line+1], d)
				}
			}
		}
	}
	return s
}

// suppressed reports whether a finding of the given pass at p is covered by
// a valid directive.
func (s *suppressions) suppressed(pass string, p token.Position) bool {
	for _, d := range s.byLine[p.Filename][p.Line] {
		for _, dp := range d.passes {
			if dp == pass {
				return true
			}
		}
	}
	return false
}
