package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// ImportPath is the module-qualified import path ("repro/internal/sim").
	ImportPath string
	// Rel is the module-relative directory ("" for the root package,
	// "internal/sim" otherwise), always with forward slashes.
	Rel string
	// Dir is the absolute directory holding the package sources.
	Dir string

	Files     []*ast.File
	FileNames []string

	Types *types.Package
	Info  *types.Info
}

// Module is a fully loaded and type-checked module: the unit the passes
// analyze. Packages are sorted by import path so every traversal of the
// module is deterministic.
type Module struct {
	Fset *token.FileSet
	// Root is the absolute module root (the directory holding go.mod).
	Root string
	// Path is the module path declared in go.mod.
	Path     string
	Packages []*Package

	byPath map[string]*Package
}

// Lookup returns the package with the given module-relative directory, or
// nil if the module has none.
func (m *Module) Lookup(rel string) *Package {
	for _, p := range m.Packages {
		if p.Rel == rel {
			return p
		}
	}
	return nil
}

// loader builds a Module: it discovers package directories, parses them,
// and type-checks them on demand. In-module imports resolve to the loader's
// own packages; everything else (the standard library) is type-checked from
// $GOROOT/src by the stdlib source importer, keeping the whole pipeline
// free of external dependencies and offline.
type loader struct {
	fset    *token.FileSet
	root    string
	modPath string
	std     types.ImporterFrom

	dirs     map[string]string // import path -> absolute dir
	packages map[string]*Package
	checking map[string]bool // import cycle detection
	errs     []string
}

// Load parses and type-checks the module rooted at dir (the directory
// containing go.mod, or any directory below it).
func Load(dir string) (*Module, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &loader{
		fset:     fset,
		root:     root,
		modPath:  modPath,
		std:      importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		dirs:     make(map[string]string),
		packages: make(map[string]*Package),
		checking: make(map[string]bool),
	}
	if err := l.discover(); err != nil {
		return nil, err
	}

	paths := make([]string, 0, len(l.dirs))
	for p := range l.dirs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if _, err := l.load(p); err != nil {
			return nil, err
		}
	}
	if len(l.errs) > 0 {
		return nil, fmt.Errorf("lint: type errors in module %s:\n  %s",
			modPath, strings.Join(l.errs, "\n  "))
	}

	mod := &Module{Fset: fset, Root: root, Path: modPath, byPath: l.packages}
	for _, p := range paths {
		mod.Packages = append(mod.Packages, l.packages[p])
	}
	return mod, nil
}

// findModuleRoot walks up from dir to the nearest directory with a go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod at or above %s", abs)
		}
		d = parent
	}
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s", gomod)
}

// discover maps every package directory in the module to its import path.
// testdata, vendor, hidden directories, and nested modules are skipped,
// mirroring the go tool's package walk.
func (l *loader) discover() error {
	return filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root {
			if name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir // nested module
			}
		}
		if !hasGoFiles(path) {
			return nil
		}
		rel, err := filepath.Rel(l.root, path)
		if err != nil {
			return err
		}
		imp := l.modPath
		if rel != "." {
			imp = l.modPath + "/" + filepath.ToSlash(rel)
		}
		l.dirs[imp] = path
		return nil
	})
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && isSourceFile(e.Name()) {
			return true
		}
	}
	return false
}

// isSourceFile reports whether name is a non-test Go source file the
// analyzer should consider.
func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_")
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.root, 0)
}

// ImportFrom implements types.ImporterFrom: module-local packages are
// loaded (and cached) by the loader itself; the standard library is
// delegated to the source importer.
func (l *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// load parses and type-checks one module-local package (memoized).
func (l *loader) load(path string) (*Package, error) {
	if p, ok := l.packages[path]; ok {
		return p, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	dir, ok := l.dirs[path]
	if !ok {
		return nil, fmt.Errorf("lint: no package %s in module %s", path, l.modPath)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		full := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(l.fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
		names = append(names, full)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			if len(l.errs) < 20 {
				l.errs = append(l.errs, err.Error())
			}
		},
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if len(l.errs) > 0 {
		return nil, fmt.Errorf("lint: type errors in %s:\n  %s", path, strings.Join(l.errs, "\n  "))
	}

	rel, err := filepath.Rel(l.root, dir)
	if err != nil {
		return nil, err
	}
	if rel == "." {
		rel = ""
	}
	p := &Package{
		ImportPath: path,
		Rel:        filepath.ToSlash(rel),
		Dir:        dir,
		Files:      files,
		FileNames:  names,
		Types:      tpkg,
		Info:       info,
	}
	l.packages[path] = p
	return p, nil
}
