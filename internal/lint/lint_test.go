package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current analyzer output")

// fixtureOpts maps each fixture to the options its golden run uses. The
// fixtures lay their packages out on the real module's paths
// (internal/sim, cmd/, internal/runner), so every fixture runs with the
// default scopes — exactly what `icrvet ./...` does.
var fixtures = []string{
	"determinism",
	"keycoverage",
	"syncmisuse",
	"floatorder",
	"droppederr",
	"suppress",
	"resetcoverage",
	"resetnested",
	"allocfree",
	"allochot",
	"wirecov",
	"wireschema",
	"ctxflow",
	"ctxsleep",
}

// fixturePass names the pass each single-pass fixture exists to trip, so
// a pass that silently stops firing fails loudly even if the golden is
// regenerated without looking.
var fixturePass = map[string]string{
	"determinism":   "determinism",
	"keycoverage":   "keycoverage",
	"syncmisuse":    "syncmisuse",
	"floatorder":    "floatorder",
	"droppederr":    "droppederr",
	"resetcoverage": "resetcoverage",
	"resetnested":   "resetcoverage",
	"allocfree":     "allocfree",
	"allochot":      "allocfree",
	"wirecov":       "wirecoverage",
	"wireschema":    "wirecoverage",
	"ctxflow":       "ctxflow",
	"ctxsleep":      "ctxflow",
}

// analyzeFixture runs all passes over one testdata module and renders the
// findings relative to the fixture root.
func analyzeFixture(t *testing.T, name string) []string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Analyze(root, Options{})
	if err != nil {
		t.Fatalf("Analyze(%s): %v", name, err)
	}
	lines := make([]string, len(findings))
	for i, f := range findings {
		lines[i] = f.Relative(root)
	}
	return lines
}

// TestGolden checks each fixture's diagnostics against its golden file,
// and that every fixture produces at least one finding (the fixtures exist
// to prove the passes fire).
func TestGolden(t *testing.T) {
	for _, name := range fixtures {
		t.Run(name, func(t *testing.T) {
			lines := analyzeFixture(t, name)
			if len(lines) == 0 {
				t.Fatalf("fixture %s produced no findings", name)
			}
			if pass := fixturePass[name]; pass != "" {
				found := false
				for _, l := range lines {
					if strings.Contains(l, "["+pass+"]") {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("fixture %s produced no [%s] finding:\n%s", name, pass, strings.Join(lines, "\n"))
				}
			}
			got := strings.Join(lines, "\n") + "\n"
			goldenPath := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch for %s\n--- got ---\n%s--- want ---\n%s", name, got, want)
			}
		})
	}
}

// TestLiveTreeClean is the end-to-end smoke test: the repository's own
// module must analyze clean, so `make lint` only ever fails on a real
// regression.
func TestLiveTreeClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Analyze(root, Options{})
	if err != nil {
		t.Fatalf("Analyze(repo): %v", err)
	}
	for _, f := range findings {
		t.Errorf("live tree finding: %s", f.Relative(root))
	}
}

// TestParseDirective covers the suppression grammar, including every
// malformed shape the driver must reject.
func TestParseDirective(t *testing.T) {
	cases := []struct {
		text    string
		ok      bool // is an icrvet directive at all
		wantErr string
		passes  []string
		reason  string
	}{
		{text: "icrvet:ignore determinism wall-clock seam", ok: true,
			passes: []string{"determinism"}, reason: "wall-clock seam"},
		{text: "  icrvet:ignore droppederr,floatorder shared justification  ", ok: true,
			passes: []string{"droppederr", "floatorder"}, reason: "shared justification"},
		{text: "icrvet:ignore keycoverage multi word reason here", ok: true,
			passes: []string{"keycoverage"}, reason: "multi word reason here"},

		// Malformed directives.
		{text: "icrvet:ignore", ok: true, wantErr: "missing pass name"},
		{text: "icrvet:ignore determinism", ok: true, wantErr: "missing reason"},
		{text: "icrvet:ignore nosuchpass some reason", ok: true, wantErr: `unknown pass "nosuchpass"`},
		{text: "icrvet:ignore determinism,, double comma", ok: true, wantErr: "empty pass name"},
		{text: "icrvet:ignore ,determinism leading comma", ok: true, wantErr: "empty pass name"},

		// Not directives at all.
		{text: "just a comment", ok: false},
		{text: "icrvet:ignorex determinism reason", ok: false},
		{text: "nolint:gocritic whatever", ok: false},
	}
	for _, tc := range cases {
		passes, reason, ok, err := parseDirective(tc.text)
		if ok != tc.ok {
			t.Errorf("%q: directive=%v, want %v", tc.text, ok, tc.ok)
			continue
		}
		if !tc.ok {
			continue
		}
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("%q: err=%v, want containing %q", tc.text, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: unexpected error %v", tc.text, err)
			continue
		}
		if strings.Join(passes, "|") != strings.Join(tc.passes, "|") {
			t.Errorf("%q: passes=%v, want %v", tc.text, passes, tc.passes)
		}
		if reason != tc.reason {
			t.Errorf("%q: reason=%q, want %q", tc.text, reason, tc.reason)
		}
	}
}

// TestSuppressFixture pins the semantics end to end: valid directives
// remove findings, malformed ones become directive findings, and a wrong
// pass name both fails to suppress and is flagged as a stale suppression.
func TestSuppressFixture(t *testing.T) {
	lines := analyzeFixture(t, "suppress")
	var directives, floats int
	for _, l := range lines {
		switch {
		case strings.Contains(l, "[directive]"):
			directives++
		case strings.Contains(l, "[floatorder]"):
			floats++
		}
		if strings.Contains(l, "SumTrailing") || strings.Contains(l, "SumAbove") {
			t.Errorf("suppressed function leaked a finding: %s", l)
		}
	}
	if directives != 4 {
		t.Errorf("got %d directive findings, want 4 (stale wrong-pass, empty, unknown pass, missing reason):\n%s",
			directives, strings.Join(lines, "\n"))
	}
	stale := false
	for _, l := range lines {
		if strings.Contains(l, "suppresses nothing") {
			stale = true
		}
	}
	if !stale {
		t.Errorf("wrong-pass directive was not flagged as stale:\n%s", strings.Join(lines, "\n"))
	}
	// SumWrongPass and SumMalformed must both still be flagged.
	if floats != 2 {
		t.Errorf("got %d floatorder findings, want 2:\n%s", floats, strings.Join(lines, "\n"))
	}
}

// TestSelectPasses covers the pass-subset plumbing and unknown names.
func TestSelectPasses(t *testing.T) {
	if _, err := selectPasses([]string{"determinism", "droppederr"}); err != nil {
		t.Fatal(err)
	}
	if _, err := selectPasses([]string{"bogus"}); err == nil {
		t.Fatal("selectPasses(bogus): want error")
	}
	root, err := filepath.Abs(filepath.Join("testdata", "determinism"))
	if err != nil {
		t.Fatal(err)
	}
	// Only droppederr selected: the determinism fixture must come back
	// clean, proving the subset actually narrows the run.
	findings, err := Analyze(root, Options{Passes: []string{"droppederr"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("droppederr-only run over determinism fixture: %d findings, want 0", len(findings))
	}
}

// TestHotPathScope pins that determinism only polices the hot packages:
// the fixture's tools/ package commits the same sins and stays clean.
func TestHotPathScope(t *testing.T) {
	lines := analyzeFixture(t, "determinism")
	for _, l := range lines {
		if strings.Contains(l, "tools/") {
			t.Errorf("determinism flagged an off-hot-path package: %s", l)
		}
		if !strings.HasPrefix(l, "internal/sim/") {
			t.Errorf("unexpected finding outside internal/sim: %s", l)
		}
	}
}

// TestJSONRoundTrip pins the -json artifact schema: Encode output decodes
// back to the same report, findings carry root-relative paths, and an
// empty run still encodes "findings": [] (never null).
func TestJSONRoundTrip(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "suppress"))
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Analyze(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("suppress fixture produced no findings to encode")
	}
	rep := NewJSONReport(root, nil, findings)
	if rep.Version != JSONVersion {
		t.Errorf("version = %d, want %d", rep.Version, JSONVersion)
	}
	if len(rep.Passes) != len(PassNames()) {
		t.Errorf("passes = %v, want the full roster", rep.Passes)
	}
	data, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSONReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Findings) != len(findings) {
		t.Fatalf("round trip lost findings: %d != %d", len(back.Findings), len(findings))
	}
	for i, jf := range back.Findings {
		want := findings[i].Relative(root)
		gotPrefix := jf.File
		if !strings.HasPrefix(want, gotPrefix+":") {
			t.Errorf("finding %d: file %q does not prefix rendered %q", i, jf.File, want)
		}
		if strings.ContainsRune(jf.File, os.PathSeparator) && os.PathSeparator != '/' {
			t.Errorf("finding %d: file %q is not slash-separated", i, jf.File)
		}
	}

	// Empty reports still carry [] and the roster.
	empty, err := NewJSONReport(root, []string{"determinism"}, nil).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(empty), `"findings": []`) {
		t.Errorf("empty report encodes findings as null:\n%s", empty)
	}

	// Future versions are refused, not misparsed.
	if _, err := DecodeJSONReport([]byte(`{"version": 99, "passes": [], "findings": []}`)); err == nil {
		t.Error("DecodeJSONReport accepted an unknown version")
	}
}

// TestParallelDeterminism pins that the sharded parallel engine produces
// identical output across repeated runs over a multi-package fixture.
func TestParallelDeterminism(t *testing.T) {
	base := analyzeFixture(t, "droppederr")
	for i := 0; i < 3; i++ {
		again := analyzeFixture(t, "droppederr")
		if strings.Join(again, "\n") != strings.Join(base, "\n") {
			t.Fatalf("run %d differed:\n%s\n--- vs ---\n%s",
				i, strings.Join(again, "\n"), strings.Join(base, "\n"))
		}
	}
}
