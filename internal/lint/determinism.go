package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// globalRandFuncs are the math/rand (and math/rand/v2) top-level functions
// that draw from the process-wide source. Constructors (New, NewSource,
// NewZipf, NewPCG, ...) are fine: they are how code obtains the seeded
// *rand.Rand the invariant demands.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "IntN": true,
	"Int31": true, "Int31n": true, "Int32": true, "Int32N": true,
	"Int63": true, "Int63n": true, "Int64": true, "Int64N": true,
	"Uint": true, "UintN": true,
	"Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
	"Float32": true, "Float64": true,
	"NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true, "N": true,
}

// runDeterminism flags sources of nondeterminism inside the simulation hot
// path: wall-clock reads, the global math/rand source, and map iteration
// whose body accumulates ordered output (appends, string building, writes).
// Floating-point accumulation under map iteration is the floatorder pass's
// job module-wide, so it is not duplicated here.
func runDeterminism(_ *Analysis, pkg *Package, r *Reporter) {
	if !inScope(pkg.Rel, r.hotPaths()) {
		return
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeterminismCall(pkg, r, n)
			case *ast.RangeStmt:
				checkMapRange(pkg, r, n)
			}
			return true
		})
	}
}

// checkDeterminismCall flags time.Now and global math/rand calls.
func checkDeterminismCall(pkg *Package, r *Reporter, call *ast.CallExpr) {
	pkgPath, name, ok := stdFuncCall(pkg, call)
	if !ok {
		return
	}
	switch {
	case pkgPath == "time" && name == "Now":
		r.Reportf(call.Pos(),
			"time.Now in hot package %s: simulation results must be a pure function of (Machine, Run); inject a clock seam instead", pkg.Rel)
	case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && globalRandFuncs[name]:
		r.Reportf(call.Pos(),
			"global rand.%s uses the process-wide source; draw from an explicitly seeded *rand.Rand so runs replay byte-identically", name)
	}
}

// stdFuncCall resolves a call of the form pkg.Func and returns the package
// path and function name. Method calls and locally defined functions
// return ok=false.
func stdFuncCall(pkg *Package, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isID := sel.X.(*ast.Ident)
	if !isID {
		return "", "", false
	}
	pn, isPkg := pkg.Info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// checkMapRange flags order-dependent accumulation in the body of a range
// over a map: appends, string concatenation, and output writes all bake the
// runtime's randomized iteration order into results.
func checkMapRange(pkg *Package, r *Reporter, rng *ast.RangeStmt) {
	tv, ok := pkg.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
					r.Reportf(n.Pos(),
						"append inside range over map: element order follows the map's randomized iteration; collect keys, sort, then iterate")
					return true
				}
			}
			if pkgPath, name, ok := stdFuncCall(pkg, n); ok {
				if pkgPath == "fmt" && isOrderedWrite(name) {
					r.Reportf(n.Pos(),
						"fmt.%s inside range over map emits output in randomized iteration order; collect keys, sort, then iterate", name)
				}
			} else if sel, ok := n.Fun.(*ast.SelectorExpr); ok && isOrderedWrite(sel.Sel.Name) {
				r.Reportf(n.Pos(),
					"%s inside range over map emits output in randomized iteration order; collect keys, sort, then iterate", sel.Sel.Name)
			}
		case *ast.AssignStmt:
			checkMapRangeAssign(pkg, r, n)
		}
		return true
	})
}

// isOrderedWrite recognizes method/function names that append to an
// ordered sink (CSV writers, builders, report emitters, printf family).
func isOrderedWrite(name string) bool {
	if strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Fprint") {
		return true
	}
	switch name {
	case "Print", "Printf", "Println", "Append":
		return true
	}
	return false
}

// checkMapRangeAssign flags string accumulation (s += ...) under map
// iteration. Float accumulation is reported by floatorder.
func checkMapRangeAssign(pkg *Package, r *Reporter, as *ast.AssignStmt) {
	if !isCompoundAssign(as) || len(as.Lhs) != 1 {
		return
	}
	tv, ok := pkg.Info.Types[as.Lhs[0]]
	if !ok {
		return
	}
	if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
		r.Reportf(as.Pos(),
			"string accumulation inside range over map builds output in randomized iteration order; collect keys, sort, then iterate")
	}
}
