package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// runAllocFree verifies the zero-allocation guarantee of the simulator's
// steady-state loop statically, complementing the AllocsPerRun spot checks
// that can only sample configurations. Roots are the cycle loop itself —
// (*Core).Run and (*Core).RunWarming in internal/cpu — plus every function
// or closure marked //icrvet:hot (the hooks installed behind dynamic call
// seams like Config.EachCycle, which the call graph cannot follow). In
// every function statically reachable from a root, the pass flags the
// constructs that force heap allocation:
//
//   - closure creation, make, new, and slice/map composite literals
//   - taking the address of a composite literal
//   - append that does not feed back into its own base slice
//     (x = append(x, ...) and x = append(x[:0], ...) are the sanctioned
//     scratch-reuse idioms; anything else can escape)
//   - string concatenation and string<->[]byte conversions
//   - explicit conversions to interface types (boxing)
//   - any fmt.* call (always boxes its arguments)
//
// Amortized lazy allocation (e.g. cache.Memory synthesizing blocks on
// first touch) is exempted with //icrvet:ignore allocfree at the site.
// Interface dispatch is over-approximated to every in-module
// implementation, so a predictor swapped in behind an interface is checked
// without new annotations.
func runAllocFree(a *Analysis, r *Reporter) {
	g := a.graph()
	roots := allocRoots(a)
	if len(roots) == 0 {
		return
	}
	parent := g.reachable(roots)
	for _, n := range g.nodes {
		if _, ok := parent[n]; ok {
			checkAllocFreeNode(a, r, n, parent)
		}
	}
}

// allocRoots gathers the steady-state entry points.
func allocRoots(a *Analysis) []*funcNode {
	g := a.graph()
	var roots []*funcNode
	for _, n := range g.nodes {
		if n.obj != nil && n.pkg.Rel == "internal/cpu" &&
			(n.obj.Name() == "Run" || n.obj.Name() == "RunWarming") &&
			recvTypeName(n.obj) == "Core" {
			roots = append(roots, n)
			continue
		}
		pos := a.Mod.Fset.Position(n.Pos())
		if a.dirs.annotationAt(annHot, pos) != nil {
			roots = append(roots, n)
		}
	}
	return roots
}

// recvTypeName returns the name of a method's receiver type ("" for plain
// functions).
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if named := asNamedStruct(sig.Recv().Type()); named != nil {
		return named.Obj().Name()
	}
	return ""
}

// checkAllocFreeNode flags allocation-inducing constructs in one reachable
// function body.
func checkAllocFreeNode(a *Analysis, r *Reporter, n *funcNode, parent map[*funcNode]*funcNode) {
	pkg := n.pkg
	via := chain(parent, n)
	report := func(pos token.Pos, what string) {
		r.Reportf(pos, "%s in the steady-state loop (reachable via %s); hoist it into setup or a scratch buffer", what, via)
	}

	// Sanctioned appends: x = append(x, ...) / x = append(x[:0], ...).
	selfAppend := make(map[*ast.CallExpr]bool)
	n.inspectOwn(func(node ast.Node) bool {
		as, ok := node.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || len(call.Args) == 0 || !isBuiltin(pkg, call.Fun, "append") {
				continue
			}
			base := ast.Unparen(call.Args[0])
			if sl, ok := base.(*ast.SliceExpr); ok {
				base = sl.X
			}
			if types.ExprString(base) == types.ExprString(as.Lhs[i]) {
				selfAppend[call] = true
			}
		}
		return true
	})

	n.inspectOwn(func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			if node != n.lit {
				report(node.Pos(), "closure creation")
			}
		case *ast.CompositeLit:
			if tv, ok := pkg.Info.Types[node]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					report(node.Pos(), "slice/map literal")
				}
			}
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if _, ok := ast.Unparen(node.X).(*ast.CompositeLit); ok {
					report(node.Pos(), "address of composite literal")
				}
			}
		case *ast.BinaryExpr:
			// Constant-folded concatenation ("a"+"b") costs nothing.
			if node.Op == token.ADD && isStringExpr(pkg, node.X) &&
				pkg.Info.Types[node].Value == nil {
				report(node.Pos(), "string concatenation")
			}
		case *ast.AssignStmt:
			if node.Tok == token.ADD_ASSIGN && len(node.Lhs) == 1 && isStringExpr(pkg, node.Lhs[0]) {
				report(node.Pos(), "string concatenation")
			}
		case *ast.CallExpr:
			checkAllocCall(pkg, report, node, selfAppend)
		}
		return true
	})
}

// checkAllocCall classifies one call expression in a hot body.
func checkAllocCall(pkg *Package, report func(token.Pos, string), call *ast.CallExpr, selfAppend map[*ast.CallExpr]bool) {
	switch {
	case isBuiltin(pkg, call.Fun, "make"):
		report(call.Pos(), "make")
		return
	case isBuiltin(pkg, call.Fun, "new"):
		report(call.Pos(), "new")
		return
	case isBuiltin(pkg, call.Fun, "append"):
		if !selfAppend[call] {
			report(call.Pos(), "append escaping its base slice")
		}
		return
	}
	if pkgPath, name, ok := stdFuncCall(pkg, call); ok && pkgPath == "fmt" {
		report(call.Pos(), "fmt."+name+" (boxes every argument)")
		return
	}
	// Explicit conversions: T(x) where T is an interface (boxing) or a
	// string<->[]byte pair (copies).
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := pkg.Info.Types[call.Args[0]].Type
		if src == nil {
			return
		}
		if types.IsInterface(dst) && !types.IsInterface(src) {
			report(call.Pos(), "conversion to interface (boxes the value)")
			return
		}
		if isStringByteConv(dst, src) {
			report(call.Pos(), "string<->[]byte conversion (copies)")
		}
	}
}

// isBuiltin reports whether fun names the given builtin.
func isBuiltin(pkg *Package, fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// isStringExpr reports whether e has string type.
func isStringExpr(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// isStringByteConv reports a string<->[]byte (or []rune) conversion.
func isStringByteConv(dst, src types.Type) bool {
	return (isStringType(dst) && isByteSlice(src)) || (isByteSlice(dst) && isStringType(src))
}

func isStringType(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (basic.Kind() == types.Byte || basic.Kind() == types.Rune || basic.Kind() == types.Uint8 || basic.Kind() == types.Int32)
}
