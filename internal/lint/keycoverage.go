package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// keyFuncName is the content-address serializer the keycoverage pass
// anchors on: runner.KeyFor in this repository (any module-level function
// of that name in any package).
const keyFuncName = "KeyFor"

// runKeyCoverage verifies that every KeyFor function references — directly
// or through same-package helpers it calls — every exported field of the
// struct types it takes as parameters, recursing through nested in-module
// struct fields. A config knob added without a key contribution would make
// two observably different runs share a memo entry, silently corrupting
// every figure built from cached results; this pass turns that into a
// build failure the moment the field is added.
//
// Function-typed fields count as covered only if referenced too (KeyFor
// must at least nil-check them to refuse memoizing an un-fingerprintable
// run). Interface-typed fields are required to be referenced but are not
// recursed into: their dynamic contents are the serializer's problem.
func runKeyCoverage(a *Analysis, r *Reporter) {
	mod := a.Mod
	found := false
	for _, pkg := range mod.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv != nil || fd.Name.Name != keyFuncName || fd.Body == nil {
					continue
				}
				found = true
				checkKeyCoverage(mod, pkg, r, fd)
			}
		}
	}
	if !found && moduleWantsKeyFunc(mod) {
		// The serializer itself disappeared: report at the runner package.
		if pkg := mod.Lookup("internal/runner"); pkg != nil && len(pkg.Files) > 0 {
			r.Reportf(pkg.Files[0].Package,
				"no %s function found in %s: the memo key serializer is gone", keyFuncName, pkg.ImportPath)
		}
	}
}

// moduleWantsKeyFunc reports whether the module is expected to define a
// key serializer at all (it has an internal/runner package).
func moduleWantsKeyFunc(mod *Module) bool {
	return mod.Lookup("internal/runner") != nil
}

// checkKeyCoverage checks one KeyFor function.
func checkKeyCoverage(mod *Module, pkg *Package, r *Reporter, fd *ast.FuncDecl) {
	fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sig := fn.Type().(*types.Signature)

	// Roots: every parameter with a named struct type.
	var roots []*types.Named
	for i := 0; i < sig.Params().Len(); i++ {
		if named := asNamedStruct(sig.Params().At(i).Type()); named != nil {
			roots = append(roots, named)
		}
	}
	if len(roots) == 0 {
		r.Reportf(fd.Pos(), "%s takes no struct parameters: nothing to fingerprint", keyFuncName)
		return
	}

	covered := coveredFields(pkg, fd)

	seen := make(map[*types.Named]bool)
	var missing []string
	var walk func(named *types.Named)
	walk = func(named *types.Named) {
		if seen[named] {
			return
		}
		seen[named] = true
		st := named.Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() {
				continue
			}
			key := fieldKey(named, f.Name())
			if !covered[key] {
				missing = append(missing, key)
				continue
			}
			// Recurse into nested in-module struct fields (through
			// pointers): their knobs must be keyed too.
			if sub := asNamedStruct(f.Type()); sub != nil && inModule(mod, sub) {
				walk(sub)
			}
		}
	}
	for _, root := range roots {
		walk(root)
	}
	sort.Strings(missing)
	for _, key := range missing {
		r.Reportf(fd.Pos(),
			"%s does not reference %s: a config knob without a key contribution makes distinct runs share a memo entry; hash it (or nil-check and refuse memoization)", keyFuncName, key)
	}
}

// coveredFields gathers every (struct, field) selection reachable from fd
// through functions and methods of the same package.
func coveredFields(pkg *Package, fd *ast.FuncDecl) map[string]bool {
	// Index the package's function declarations by their types.Func.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj, ok := pkg.Info.Defs[fn.Name].(*types.Func); ok {
					decls[obj] = fn
				}
			}
		}
	}

	covered := make(map[string]bool)
	visited := make(map[*ast.FuncDecl]bool)
	var visit func(*ast.FuncDecl)
	visit = func(fn *ast.FuncDecl) {
		if visited[fn] {
			return
		}
		visited[fn] = true
		ast.Inspect(fn, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := pkg.Info.Selections[n]; ok && sel.Kind() == types.FieldVal {
					recordSelection(covered, sel)
				}
			case *ast.Ident:
				// Follow calls (and references) to same-package functions
				// and methods, e.g. the hasher helpers.
				if callee, ok := pkg.Info.Uses[n].(*types.Func); ok && callee.Pkg() == pkg.Types {
					if d, ok := decls[callee]; ok {
						visit(d)
					}
				}
			}
			return true
		})
	}
	visit(fd)
	return covered
}

// recordSelection records every field step along a (possibly embedded)
// field selection path.
func recordSelection(covered map[string]bool, sel *types.Selection) {
	t := sel.Recv()
	for _, idx := range sel.Index() {
		named := asNamedStruct(t)
		if named == nil {
			return
		}
		st := named.Underlying().(*types.Struct)
		if idx >= st.NumFields() {
			return
		}
		f := st.Field(idx)
		covered[fieldKey(named, f.Name())] = true
		t = f.Type()
	}
}

// asNamedStruct unwraps pointers and aliases down to a named type with a
// struct underlying, or nil.
func asNamedStruct(t types.Type) *types.Named {
	t = types.Unalias(t)
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

// inModule reports whether the named type is declared inside the analyzed
// module (recursion stops at the standard library).
func inModule(mod *Module, named *types.Named) bool {
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	return pkg.Path() == mod.Path || strings.HasPrefix(pkg.Path(), mod.Path+"/")
}

// fieldKey names a struct field for diagnostics: "cpu.Config.MSHRs".
func fieldKey(named *types.Named, field string) string {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return fmt.Sprintf("%s.%s", obj.Name(), field)
	}
	return fmt.Sprintf("%s.%s.%s", obj.Pkg().Name(), obj.Name(), field)
}
