// Package ecc implements the two error-protection codes the paper's cache
// schemes rely on: even parity at byte granularity ("byte-parity": one check
// bit per 8 data bits, the 12.5% overhead scheme) and an 8-bit SEC-DED code
// per 64-bit word (an extended Hamming (72,64) code: Single Error
// Correction, Double Error Detection).
//
// Both codes operate on real bits: the simulator stores genuine check bits
// alongside cache-line payloads and runs these codecs on every protected
// access, so detection and correction outcomes are computed rather than
// assumed.
package ecc

import (
	"encoding/binary"
	"math/bits"
)

// Result classifies the outcome of a code check.
type Result uint8

// Check outcomes.
const (
	// OK means the data matched its check bits.
	OK Result = iota + 1
	// CorrectedSingle means a single-bit error was found and corrected
	// (SEC-DED only; parity cannot correct).
	CorrectedSingle
	// DetectedSingle means a single-bit error was detected but cannot be
	// corrected by the code alone (byte parity).
	DetectedSingle
	// DetectedDouble means a double-bit error was detected (SEC-DED).
	DetectedDouble
	// DetectedCheckBit means the error is confined to the check bits; the
	// data itself is intact.
	DetectedCheckBit
)

var resultNames = map[Result]string{
	OK:               "ok",
	CorrectedSingle:  "corrected-single",
	DetectedSingle:   "detected-single",
	DetectedDouble:   "detected-double",
	DetectedCheckBit: "detected-checkbit",
}

// String returns a short name for the result.
func (r Result) String() string {
	if s, ok := resultNames[r]; ok {
		return s
	}
	return "unknown"
}

// Detected reports whether the check found any error at all.
func (r Result) Detected() bool { return r != OK }

// DataIntact reports whether, after any correction the code performed, the
// data value is known to be correct.
func (r Result) DataIntact() bool {
	return r == OK || r == CorrectedSingle || r == DetectedCheckBit
}

// ---------------------------------------------------------------------------
// Byte parity
// ---------------------------------------------------------------------------

// ParityByte returns the even-parity bit for one data byte: 1 if the byte
// has an odd number of set bits, so that (popcount(b) + parity) is even.
func ParityByte(b byte) byte {
	return byte(bits.OnesCount8(b) & 1)
}

// EncodeParity64 returns the 8 parity bits for a 64-bit word (one per byte,
// bit i of the result covering byte i, little-endian byte order).
//
// The parities of all 8 bytes are computed at once: three xor-folds leave
// each byte's parity in its bit 0, and the multiply gathers those eight
// bit-0 positions into the top byte. The gather is exact — every partial
// product of (x & 0x0101…) * 0x0102040810204080 lands on a distinct bit
// (8i−7j collides only for i=j within range), so no carries occur.
func EncodeParity64(word uint64) uint8 {
	word ^= word >> 4
	word ^= word >> 2
	word ^= word >> 1
	return uint8((word & 0x0101010101010101) * 0x0102040810204080 >> 56)
}

// CheckParity64 verifies a 64-bit word against its stored parity bits.
// It returns OK when every byte checks, and DetectedSingle otherwise.
// Byte parity detects any odd number of flipped bits within a byte but
// cannot locate or correct them.
func CheckParity64(word uint64, parity uint8) Result {
	if EncodeParity64(word) == parity {
		return OK
	}
	return DetectedSingle
}

// ---------------------------------------------------------------------------
// SEC-DED (72,64): extended Hamming code
// ---------------------------------------------------------------------------
//
// Layout: the 64 data bits are placed in codeword positions 1..72, skipping
// the power-of-two positions (1,2,4,8,16,32,64) that hold the seven Hamming
// check bits. An eighth, overall-parity bit covers all 71 other bits and
// upgrades the code from SEC to SEC-DED.
//
// The check byte is packed as: bits 0..6 = Hamming check bits for positions
// 1,2,4,8,16,32,64; bit 7 = overall parity.

// dataPos[i] is the codeword position (1-based) of data bit i.
var dataPos = buildDataPositions()

// posData[p] is the data-bit index stored at codeword position p, or -1 for
// check-bit positions.
var posData = buildPosData()

func buildDataPositions() [64]uint8 {
	var out [64]uint8
	pos := uint8(1)
	for i := 0; i < 64; i++ {
		for pos&(pos-1) == 0 { // skip powers of two (check-bit slots)
			pos++
		}
		out[i] = pos
		pos++
	}
	return out
}

func buildPosData() [73]int8 {
	var out [73]int8
	for p := range out {
		out[p] = -1
	}
	for i, p := range dataPos {
		out[p] = int8(i)
	}
	return out
}

// hammingMask[c] has bit i set iff data bit i participates in Hamming
// check bit c (i.e. its codeword position has bit c set). With the masks
// precomputed, each check bit is the parity of one masked word — seven
// popcounts instead of a 7×64 bit loop, with identical output.
var hammingMask = buildHammingMasks()

func buildHammingMasks() [7]uint64 {
	var out [7]uint64
	for c := 0; c < 7; c++ {
		for i := 0; i < 64; i++ {
			if dataPos[i]&(uint8(1)<<c) != 0 {
				out[c] |= 1 << uint(i)
			}
		}
	}
	return out
}

// EncodeSECDED returns the 8 check bits protecting a 64-bit data word.
func EncodeSECDED(word uint64) uint8 {
	var check uint8
	// Hamming bits: check bit c (at position 2^c) is the XOR of all data
	// bits whose position has bit c set.
	for c := 0; c < 7; c++ {
		check |= uint8(bits.OnesCount64(word&hammingMask[c])&1) << c
	}
	// Overall parity covers data bits and the seven Hamming bits.
	total := uint(bits.OnesCount64(word)) + uint(bits.OnesCount8(check&0x7f))
	check |= uint8(total&1) << 7
	return check
}

// CheckSECDED verifies (and when possible corrects) a 64-bit word against
// its stored check byte. It returns the corrected word (identical to the
// input unless Result is CorrectedSingle) and the check outcome.
func CheckSECDED(word uint64, check uint8) (corrected uint64, r Result) {
	expect := EncodeSECDED(word)
	syndrome := (expect ^ check) & 0x7f
	// The overall-parity check is evaluated over the received codeword:
	// the data bits plus all eight stored check bits must have even weight.
	parityErr := (bits.OnesCount64(word)+bits.OnesCount8(check))&1 != 0

	switch {
	case syndrome == 0 && !parityErr:
		return word, OK
	case syndrome == 0 && parityErr:
		// Only the overall parity bit flipped; data is intact.
		return word, DetectedCheckBit
	case parityErr:
		// Odd number of flipped bits with a nonzero syndrome: a single-bit
		// error at codeword position `syndrome`.
		if int(syndrome) < len(posData) {
			if d := posData[syndrome]; d >= 0 {
				return word ^ (1 << uint(d)), CorrectedSingle
			}
			// The flipped bit is one of the stored Hamming check bits.
			return word, DetectedCheckBit
		}
		// Syndrome points outside the codeword: treat as uncorrectable.
		return word, DetectedDouble
	default:
		// Nonzero syndrome with even overall parity: double-bit error.
		return word, DetectedDouble
	}
}

// ---------------------------------------------------------------------------
// Line-granularity helpers
// ---------------------------------------------------------------------------

// ParityBytesPerLine returns the number of bytes needed to store one parity
// bit per data byte for a line of the given size.
func ParityBytesPerLine(lineSize int) int { return (lineSize + 7) / 8 }

// SECDEDBytesPerLine returns the number of check bytes needed to protect a
// line at 64-bit granularity (one check byte per 8 data bytes).
func SECDEDBytesPerLine(lineSize int) int { return (lineSize + 7) / 8 }

// EncodeParityLine fills dst with per-byte parity bits for data. Bit j of
// dst[i] is the parity of data[8*i+j]. dst must have length
// ParityBytesPerLine(len(data)).
func EncodeParityLine(data, dst []byte) {
	i := 0
	for ; i+8 <= len(data); i += 8 {
		dst[i/8] = EncodeParity64(binary.LittleEndian.Uint64(data[i:]))
	}
	if i < len(data) {
		var p byte
		for j, b := range data[i:] {
			p |= ParityByte(b) << uint(j)
		}
		dst[i/8] = p
	}
}

// CheckParityLineByte verifies a single data byte of a line against the
// line's packed parity bits.
func CheckParityLineByte(data, parity []byte, i int) Result {
	stored := (parity[i/8] >> uint(i%8)) & 1
	if ParityByte(data[i]) == stored {
		return OK
	}
	return DetectedSingle
}

// CheckParityLineRange verifies bytes [off, off+n) of a line. It returns OK
// only if every byte in the range checks.
func CheckParityLineRange(data, parity []byte, off, n int) Result {
	i := off
	// Word-aligned spans check 8 bytes per step against the packed
	// parity byte directly.
	for ; i%8 == 0 && i+8 <= off+n && i+8 <= len(data); i += 8 {
		if EncodeParity64(binary.LittleEndian.Uint64(data[i:])) != parity[i/8] {
			return DetectedSingle
		}
	}
	for ; i < off+n && i < len(data); i++ {
		if CheckParityLineByte(data, parity, i) != OK {
			return DetectedSingle
		}
	}
	return OK
}

// Word64 extracts the aligned 64-bit word containing byte offset off from a
// line, little-endian.
func Word64(data []byte, off int) uint64 {
	w := off &^ 7
	if w+8 <= len(data) {
		return binary.LittleEndian.Uint64(data[w:])
	}
	var v uint64
	for i := 0; i < 8 && w+i < len(data); i++ {
		v |= uint64(data[w+i]) << (8 * i)
	}
	return v
}

// PutWord64 stores an aligned 64-bit word back into a line at the word
// containing byte offset off.
func PutWord64(data []byte, off int, v uint64) {
	w := off &^ 7
	if w+8 <= len(data) {
		binary.LittleEndian.PutUint64(data[w:], v)
		return
	}
	for i := 0; i < 8 && w+i < len(data); i++ {
		data[w+i] = byte(v >> (8 * i))
	}
}

// EncodeSECDEDLine fills dst with one SEC-DED check byte per aligned 64-bit
// word of data. dst must have length SECDEDBytesPerLine(len(data)).
func EncodeSECDEDLine(data, dst []byte) {
	for i := range dst {
		dst[i] = EncodeSECDED(Word64(data, i*8))
	}
}

// CheckSECDEDLineWord verifies (and corrects, in place) the aligned 64-bit
// word containing byte offset off.
func CheckSECDEDLineWord(data, check []byte, off int) Result {
	wi := off / 8
	word := Word64(data, off)
	corrected, r := CheckSECDED(word, check[wi])
	if r == CorrectedSingle {
		PutWord64(data, off, corrected)
	}
	return r
}
