package ecc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParityByte(t *testing.T) {
	cases := []struct {
		b    byte
		want byte
	}{
		{0x00, 0}, {0x01, 1}, {0x03, 0}, {0x07, 1},
		{0xff, 0}, {0xfe, 1}, {0x80, 1}, {0xaa, 0},
	}
	for _, c := range cases {
		if got := ParityByte(c.b); got != c.want {
			t.Errorf("ParityByte(%#x) = %d, want %d", c.b, got, c.want)
		}
	}
}

func TestEncodeParity64RoundTrip(t *testing.T) {
	words := []uint64{0, 1, 0xffffffffffffffff, 0xdeadbeefcafebabe, 1 << 63}
	for _, w := range words {
		if r := CheckParity64(w, EncodeParity64(w)); r != OK {
			t.Errorf("CheckParity64(%#x, encoded) = %v, want OK", w, r)
		}
	}
}

func TestEncodeParity64MatchesByteLoop(t *testing.T) {
	// The SWAR fold-and-gather must agree with the definitional per-byte
	// loop on every input.
	ref := func(word uint64) uint8 {
		var p uint8
		for i := 0; i < 8; i++ {
			p |= ParityByte(byte(word>>(8*i))) << i
		}
		return p
	}
	f := func(word uint64) bool {
		return EncodeParity64(word) == ref(word)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	for _, w := range []uint64{0, ^uint64(0), 0x0102040810204080, 0x0101010101010101} {
		if EncodeParity64(w) != ref(w) {
			t.Errorf("EncodeParity64(%#x) = %#x, want %#x", w, EncodeParity64(w), ref(w))
		}
	}
}

func TestLineParityUnalignedTail(t *testing.T) {
	// Lines whose length is not a multiple of 8 exercise the byte-loop
	// tails of EncodeParityLine and CheckParityLineRange.
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 7, 8, 9, 20, 31, 32, 33} {
		data := make([]byte, n)
		rng.Read(data)
		parity := make([]byte, ParityBytesPerLine(n))
		EncodeParityLine(data, parity)
		if r := CheckParityLineRange(data, parity, 0, n); r != OK {
			t.Errorf("len %d: clean check = %v, want OK", n, r)
		}
		for i := 0; i < n; i++ {
			data[i] ^= 0x10
			if r := CheckParityLineRange(data, parity, 0, n); r != DetectedSingle {
				t.Errorf("len %d: flip at %d = %v, want DetectedSingle", n, i, r)
			}
			data[i] ^= 0x10
		}
	}
}

func TestParityDetectsSingleBitFlip(t *testing.T) {
	f := func(word uint64, bit uint8) bool {
		p := EncodeParity64(word)
		flipped := word ^ (1 << (bit % 64))
		return CheckParity64(flipped, p) == DetectedSingle
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParityMissesDoubleFlipSameByte(t *testing.T) {
	// Two flips within the same byte preserve byte parity: a documented
	// limitation of byte parity that SEC-DED does not share.
	word := uint64(0x0123456789abcdef)
	p := EncodeParity64(word)
	flipped := word ^ 0x3 // bits 0 and 1, same byte
	if r := CheckParity64(flipped, p); r != OK {
		t.Errorf("double flip in one byte: got %v, want OK (undetected)", r)
	}
}

func TestParityDetectsDoubleFlipDifferentBytes(t *testing.T) {
	word := uint64(0x0123456789abcdef)
	p := EncodeParity64(word)
	flipped := word ^ (1 | 1<<8) // bit 0 of byte 0 and bit 0 of byte 1
	if r := CheckParity64(flipped, p); r != DetectedSingle {
		t.Errorf("double flip across bytes: got %v, want DetectedSingle", r)
	}
}

func TestSECDEDCleanWord(t *testing.T) {
	f := func(word uint64) bool {
		c := EncodeSECDED(word)
		got, r := CheckSECDED(word, c)
		return r == OK && got == word
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSECDEDCorrectsEverySingleBit(t *testing.T) {
	words := []uint64{0, 0xffffffffffffffff, 0x0123456789abcdef, 0x5555aaaa5555aaaa}
	for _, w := range words {
		c := EncodeSECDED(w)
		for bit := 0; bit < 64; bit++ {
			flipped := w ^ (1 << uint(bit))
			got, r := CheckSECDED(flipped, c)
			if r != CorrectedSingle {
				t.Fatalf("word %#x bit %d: result %v, want CorrectedSingle", w, bit, r)
			}
			if got != w {
				t.Fatalf("word %#x bit %d: corrected to %#x, want %#x", w, bit, got, w)
			}
		}
	}
}

func TestSECDEDCorrectsSingleBitQuick(t *testing.T) {
	f := func(word uint64, bit uint8) bool {
		c := EncodeSECDED(word)
		flipped := word ^ (1 << (bit % 64))
		got, r := CheckSECDED(flipped, c)
		return r == CorrectedSingle && got == word
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSECDEDDetectsDoubleBit(t *testing.T) {
	f := func(word uint64, b1, b2 uint8) bool {
		i, j := b1%64, b2%64
		if i == j {
			return true // not a double flip
		}
		c := EncodeSECDED(word)
		flipped := word ^ (1 << i) ^ (1 << j)
		_, r := CheckSECDED(flipped, c)
		return r == DetectedDouble
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSECDEDCheckBitError(t *testing.T) {
	word := uint64(0xfeedfacecafef00d)
	c := EncodeSECDED(word)
	for bit := 0; bit < 8; bit++ {
		got, r := CheckSECDED(word, c^(1<<uint(bit)))
		if got != word {
			t.Fatalf("check-bit %d flip altered data", bit)
		}
		if !r.DataIntact() {
			t.Fatalf("check-bit %d flip: result %v should leave data intact", bit, r)
		}
		if !r.Detected() {
			t.Fatalf("check-bit %d flip went undetected", bit)
		}
	}
}

func TestDataPositionsDistinct(t *testing.T) {
	seen := map[uint8]bool{}
	for i, p := range dataPos {
		if p == 0 || p > 72 {
			t.Fatalf("data bit %d mapped to invalid position %d", i, p)
		}
		if p&(p-1) == 0 {
			t.Fatalf("data bit %d mapped to check position %d", i, p)
		}
		if seen[p] {
			t.Fatalf("position %d used twice", p)
		}
		seen[p] = true
	}
}

func TestLineParityRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		data := make([]byte, 64)
		rng.Read(data)
		parity := make([]byte, ParityBytesPerLine(len(data)))
		EncodeParityLine(data, parity)
		for i := range data {
			if r := CheckParityLineByte(data, parity, i); r != OK {
				t.Fatalf("trial %d byte %d: clean check failed: %v", trial, i, r)
			}
		}
		if r := CheckParityLineRange(data, parity, 0, len(data)); r != OK {
			t.Fatalf("trial %d: clean range check failed: %v", trial, r)
		}
		// Flip one bit; only that byte should fail.
		i := rng.Intn(len(data))
		data[i] ^= 1 << uint(rng.Intn(8))
		if r := CheckParityLineByte(data, parity, i); r != DetectedSingle {
			t.Fatalf("trial %d: flip in byte %d undetected", trial, i)
		}
		if r := CheckParityLineRange(data, parity, i&^7, 8); r != DetectedSingle {
			t.Fatalf("trial %d: range check missed flip", trial)
		}
	}
}

func TestLineSECDEDCorrection(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		data := make([]byte, 64)
		rng.Read(data)
		orig := make([]byte, len(data))
		copy(orig, data)
		check := make([]byte, SECDEDBytesPerLine(len(data)))
		EncodeSECDEDLine(data, check)

		off := rng.Intn(len(data))
		data[off] ^= 1 << uint(rng.Intn(8))
		if r := CheckSECDEDLineWord(data, check, off); r != CorrectedSingle {
			t.Fatalf("trial %d: result %v, want CorrectedSingle", trial, r)
		}
		for i := range data {
			if data[i] != orig[i] {
				t.Fatalf("trial %d: byte %d not restored", trial, i)
			}
		}
	}
}

func TestWord64RoundTrip(t *testing.T) {
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i)
	}
	for off := 0; off < 64; off += 8 {
		v := Word64(data, off)
		PutWord64(data, off, v^0xffffffffffffffff)
		if got := Word64(data, off); got != v^0xffffffffffffffff {
			t.Fatalf("off %d: got %#x", off, got)
		}
		PutWord64(data, off, v)
		if got := Word64(data, off); got != v {
			t.Fatalf("off %d: restore failed", off)
		}
	}
}

func TestResultClassification(t *testing.T) {
	if OK.Detected() {
		t.Error("OK should not be Detected")
	}
	for _, r := range []Result{CorrectedSingle, DetectedSingle, DetectedDouble, DetectedCheckBit} {
		if !r.Detected() {
			t.Errorf("%v should be Detected", r)
		}
	}
	for _, r := range []Result{OK, CorrectedSingle, DetectedCheckBit} {
		if !r.DataIntact() {
			t.Errorf("%v should be DataIntact", r)
		}
	}
	for _, r := range []Result{DetectedSingle, DetectedDouble} {
		if r.DataIntact() {
			t.Errorf("%v should not be DataIntact", r)
		}
	}
	if Result(99).String() != "unknown" {
		t.Error("unknown result should stringify to unknown")
	}
}
