package ecc

import "testing"

// FuzzSECDEDRoundTrip asserts the SEC-DED invariants over arbitrary words
// and error patterns: clean words check OK, single flips always correct
// back to the original, and correction never invents a third value.
func FuzzSECDEDRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint8(0))
	f.Add(uint64(0xdeadbeefcafebabe), uint8(17))
	f.Add(^uint64(0), uint8(63))
	f.Fuzz(func(t *testing.T, word uint64, bit uint8) {
		check := EncodeSECDED(word)
		if got, r := CheckSECDED(word, check); r != OK || got != word {
			t.Fatalf("clean word flagged: %v", r)
		}
		flipped := word ^ (1 << (bit % 64))
		got, r := CheckSECDED(flipped, check)
		if r != CorrectedSingle {
			t.Fatalf("single flip at bit %d: %v", bit%64, r)
		}
		if got != word {
			t.Fatalf("corrected to %#x, want %#x", got, word)
		}
	})
}

// FuzzParityLine asserts per-byte parity detects any single-bit flip in
// any byte of a line.
func FuzzParityLine(f *testing.F) {
	f.Add([]byte("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"), uint16(0))
	f.Fuzz(func(t *testing.T, data []byte, pos uint16) {
		if len(data) == 0 || len(data) > 4096 {
			t.Skip()
		}
		parity := make([]byte, ParityBytesPerLine(len(data)))
		EncodeParityLine(data, parity)
		if r := CheckParityLineRange(data, parity, 0, len(data)); r != OK {
			t.Fatalf("clean line flagged: %v", r)
		}
		i := int(pos) % len(data)
		data[i] ^= 1 << (pos % 8)
		if r := CheckParityLineByte(data, parity, i); r != DetectedSingle {
			t.Fatalf("flip in byte %d undetected", i)
		}
	})
}
