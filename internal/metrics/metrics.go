// Package metrics defines the per-run report structure shared by the
// simulator, the experiment drivers, and the CLI tools. The derived ratios
// match the paper's evaluation metrics (§4.1): execution cycles, replication
// ability, loads with replica, miss rate, energy, and (for §5.5) the
// fraction of unrecoverable loads.
package metrics

import (
	"fmt"
	"strconv"
	"strings"
)

// Report holds every counter a single simulation run produces.
type Report struct {
	Benchmark string
	Scheme    string

	Instructions uint64
	Cycles       uint64

	// Data-L1 activity.
	DL1Reads       uint64 // load accesses
	DL1ReadHits    uint64
	DL1ReadMisses  uint64
	DL1Writes      uint64 // store accesses
	DL1WriteHits   uint64
	DL1WriteMisses uint64
	DL1Writebacks  uint64

	// L2 / memory activity.
	L2Accesses  uint64
	L2Misses    uint64
	MemAccesses uint64

	// Instruction-L1 activity.
	IL1Fetches uint64
	IL1Misses  uint64

	// Branch prediction.
	Branches    uint64
	Mispredicts uint64

	// ICR replication.
	ReplAttempts        uint64 // operations at which replication was attempted
	ReplSuccesses       uint64 // attempts that left >= 1 replica in place
	ReplDoubles         uint64 // attempts that left >= 2 replicas in place
	ReadHitsWithReplica uint64 // read hits that found a replica resident
	ReplicaServedMisses uint64 // primary misses satisfied by a leftover replica
	ReplicaEvictions    uint64 // replicas displaced (by fills or other replicas)
	DeadEvictions       uint64 // dead blocks displaced to make room for replicas

	// Error behaviour.
	ErrorsInjected       uint64
	ErrorsDetected       uint64 // checks that flagged an access
	RecoveredByECC       uint64
	RecoveredByReplica   uint64
	RecoveredByDuplicate uint64 // repaired from a separate duplication cache
	RecoveredByL2        uint64 // clean block refetched from below
	UnrecoverableLoads   uint64 // dirty data lost (detected, no intact copy)
	SilentWritebacks     uint64 // corrupted dirty lines written back undetected

	// ReadHitsWithDuplicate counts read hits whose block also had a copy
	// in the attached duplication cache (the Kim & Somani baseline).
	ReadHitsWithDuplicate uint64

	// VulnerableLineCycles accumulates line-cycles of dirty data whose
	// only protection was parity (no ECC, no replica): an injection-free
	// architectural-vulnerability measure.
	VulnerableLineCycles uint64

	// Scrubber activity (when enabled).
	ScrubChecks   uint64
	ScrubErrors   uint64
	ScrubRepaired uint64
	ScrubLost     uint64

	// Energy (nJ).
	EnergyL1     float64
	EnergyL2     float64
	EnergyChecks float64
	EnergyRCache float64

	// Sampling is non-nil iff the run used SMARTS-style sampled simulation
	// (config.SampleConfig): Cycles is then extrapolated from the measured
	// detailed windows, and this records the window geometry and interval
	// estimates. All event counters above remain cumulative over the full
	// instruction stream — functional warming performs every cache access,
	// replication decision, and predictor update — so only timing is
	// estimated. Exact runs leave it nil, and their wire encoding is
	// unchanged (see ReportSchemaVersion).
	Sampling *SamplingStats `json:",omitempty"`

	// Adaptive is non-nil iff the run used the ICR-ADAPT runtime
	// replication controller (internal/adapt): it records the epoch
	// geometry, every committed knob move, and the predictor's measured
	// accuracy. Static-scheme runs leave it nil and keep their earlier
	// wire encoding (see ReportSchemaVersion).
	Adaptive *AdaptiveStats `json:",omitempty"`

	// TwoTier is non-nil iff the run protected the second tier
	// (config.TwoTier) or priced memory-tier energy: it records the
	// tier's reliability ladder, cross-tier replica traffic, and the
	// per-direction memory counters. Single-tier runs leave it nil and
	// keep their earlier wire encoding (see ReportSchemaVersion).
	TwoTier *TwoTierStats `json:",omitempty"`
}

// TwoTierStats records what the protected second tier did over a run,
// plus the per-direction memory-tier split (which exists only at this
// schema version; MemAccesses above stays the total for all versions).
type TwoTierStats struct {
	// Tier is the tier configuration label (config.TwoTier.Name), e.g.
	// "off", "P", "ECC", "ICR-P+x".
	Tier string
	// ExtraLatency is the remote-reach cycles added to every tier access.
	ExtraLatency uint64

	// Memory-tier traffic split by direction, and its energy (nJ).
	MemReads  uint64
	MemWrites uint64
	EnergyMem float64

	// In-tier replication.
	ReplAttempts     uint64
	ReplSuccesses    uint64
	ReplicaEvictions uint64
	DeadEvictions    uint64

	// Tier error behaviour (the tier's own injector and recovery ladder).
	ErrorsInjected     uint64
	ErrorsDetected     uint64
	RecoveredByReplica uint64
	RecoveredByECC     uint64
	RecoveredByCross   uint64 // tier lines repaired from copies parked in the L1
	RecoveredByMem     uint64 // clean tier lines refetched from memory
	UnrecoverableDirty uint64
	SilentWritebacks   uint64

	// Cross-tier replica traffic, summed over both directions (L1→tier
	// and tier→L1 client-side views).
	CrossOffers   uint64
	CrossAccepted uint64
	CrossRepairs  uint64
	CrossRepaired uint64
	// L1CrossRepaired counts L1 loads repaired from a copy parked in the
	// tier — the remote-repair path the latency model prices.
	L1CrossRepaired uint64
}

// AdaptiveStats records what the ICR-ADAPT runtime controller did over a
// run: how many observation epochs it saw, which knob moves it committed
// (the trajectory, capped at the controller's bound), where the knobs
// ended up, and how often an epoch following a committed move improved
// the controller's objective (the predictor-accuracy estimate).
type AdaptiveStats struct {
	// Predictor is the driving predictor's name ("decay" or "ehc").
	Predictor string
	// EpochCycles is the observation-epoch length in cycles.
	EpochCycles uint64
	// Epochs is the number of completed observation epochs.
	Epochs uint64

	// MovesUp/MovesDown count committed ladder moves toward more / less
	// aggressive replication.
	MovesUp   int
	MovesDown int
	// PredHits/PredMisses: epochs immediately after a committed move in
	// which the objective improved / did not improve.
	PredHits   int
	PredMisses int

	// Final knob state when the run ended.
	FinalLevel       int
	FinalReplicas    int
	FinalDecayWindow uint64
	FinalVictim      string
	FinalLookup      string

	// Trajectory lists the committed moves in order (bounded; the counts
	// above keep accumulating after the bound is hit).
	Trajectory []AdaptiveMove `json:",omitempty"`
}

// AdaptiveMove is one committed knob move: after epoch Epoch the
// controller switched the cache to ladder level Level.
type AdaptiveMove struct {
	Epoch uint64
	Level int
}

// Accuracy returns PredHits / (PredHits + PredMisses), or 0 when no move
// was ever evaluated.
func (a *AdaptiveStats) Accuracy() float64 {
	n := a.PredHits + a.PredMisses
	if n == 0 {
		return 0
	}
	return float64(a.PredHits) / float64(n)
}

// SamplingStats records how a sampled run measured and extrapolated its
// timing: the sampling-unit geometry, the number of measured windows, the
// instruction counts spent in each mode, and the per-window mean ± CI of
// the two headline rates. Half-widths are two-sided Student-t intervals at
// the configured confidence level; with fewer than two windows they are
// reported as 0 (undefined).
type SamplingStats struct {
	// Window geometry actually used (after defaulting).
	Period     uint64
	Detail     uint64
	Warmup     uint64
	Confidence int // percent: 90, 95, or 99

	// Windows is the number of measured detailed windows.
	Windows int
	// WarmedInstructions were executed under functional warming;
	// WarmupDiscarded were simulated in detail but excluded from timing
	// estimates (pipeline warm-up before each measured window).
	WarmedInstructions uint64
	WarmupDiscarded    uint64
	// MeasuredInstructions/MeasuredCycles accumulate over the measured
	// windows only; their ratio is the CPI estimate behind Cycles.
	MeasuredInstructions uint64
	MeasuredCycles       uint64

	// Per-window interval estimates.
	IPCMean        float64
	IPCHalfCI      float64
	MissRateMean   float64
	MissRateHalfCI float64
}

// IPC returns instructions per cycle.
func (r *Report) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// DL1Accesses returns total data-cache accesses.
func (r *Report) DL1Accesses() uint64 { return r.DL1Reads + r.DL1Writes }

// DL1MissRate returns the paper's dL1 miss rate: (read+write misses) over
// all dL1 accesses.
func (r *Report) DL1MissRate() float64 {
	a := r.DL1Accesses()
	if a == 0 {
		return 0
	}
	return float64(r.DL1ReadMisses+r.DL1WriteMisses) / float64(a)
}

// ReplAbility returns the fraction of replication attempts that succeeded
// (§4.1 "Replication Ability").
func (r *Report) ReplAbility() float64 {
	if r.ReplAttempts == 0 {
		return 0
	}
	return float64(r.ReplSuccesses) / float64(r.ReplAttempts)
}

// ReplDoubleAbility returns the fraction of attempts that created at least
// two replicas (Figure 3).
func (r *Report) ReplDoubleAbility() float64 {
	if r.ReplAttempts == 0 {
		return 0
	}
	return float64(r.ReplDoubles) / float64(r.ReplAttempts)
}

// LoadsWithReplica returns the fraction of read hits that found a replica
// resident (§4.1 "Loads with Replica").
func (r *Report) LoadsWithReplica() float64 {
	if r.DL1ReadHits == 0 {
		return 0
	}
	return float64(r.ReadHitsWithReplica) / float64(r.DL1ReadHits)
}

// UnrecoverableFrac returns unrecoverable loads as a fraction of all loads
// (Figure 14).
func (r *Report) UnrecoverableFrac() float64 {
	if r.DL1Reads == 0 {
		return 0
	}
	return float64(r.UnrecoverableLoads) / float64(r.DL1Reads)
}

// MispredictRate returns branch mispredictions per branch.
func (r *Report) MispredictRate() float64 {
	if r.Branches == 0 {
		return 0
	}
	return float64(r.Mispredicts) / float64(r.Branches)
}

// TotalEnergy returns the L1+L2+check+r-cache dynamic energy in nJ, plus
// the memory-tier energy when the run priced it (the optional TwoTier
// block; zero-cost otherwise, so single-tier totals are unchanged).
func (r *Report) TotalEnergy() float64 {
	t := r.EnergyL1 + r.EnergyL2 + r.EnergyChecks + r.EnergyRCache
	if r.TwoTier != nil {
		t += r.TwoTier.EnergyMem
	}
	return t
}

// VulnerabilityPerLine returns the average fraction of time a cache line
// spent vulnerable (dirty, parity-only, unreplicated), normalized by the
// run length and a 256-line dL1.
func (r *Report) VulnerabilityPerLine(lines int) float64 {
	if r.Cycles == 0 || lines <= 0 {
		return 0
	}
	return float64(r.VulnerableLineCycles) / (float64(r.Cycles) * float64(lines))
}

// LoadsWithDuplicate returns the fraction of read hits that had a copy in
// the attached duplication cache.
func (r *Report) LoadsWithDuplicate() float64 {
	if r.DL1ReadHits == 0 {
		return 0
	}
	return float64(r.ReadHitsWithDuplicate) / float64(r.DL1ReadHits)
}

// String renders a human-readable report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "benchmark=%s scheme=%s\n", r.Benchmark, r.Scheme)
	fmt.Fprintf(&b, "  instructions      %12d\n", r.Instructions)
	fmt.Fprintf(&b, "  cycles            %12d  (IPC %.3f)\n", r.Cycles, r.IPC())
	fmt.Fprintf(&b, "  dL1 reads         %12d  (hits %d, misses %d)\n", r.DL1Reads, r.DL1ReadHits, r.DL1ReadMisses)
	fmt.Fprintf(&b, "  dL1 writes        %12d  (hits %d, misses %d)\n", r.DL1Writes, r.DL1WriteHits, r.DL1WriteMisses)
	fmt.Fprintf(&b, "  dL1 miss rate     %12.4f\n", r.DL1MissRate())
	fmt.Fprintf(&b, "  dL1 writebacks    %12d\n", r.DL1Writebacks)
	fmt.Fprintf(&b, "  L2 accesses       %12d  (misses %d)\n", r.L2Accesses, r.L2Misses)
	fmt.Fprintf(&b, "  iL1 fetches       %12d  (misses %d)\n", r.IL1Fetches, r.IL1Misses)
	fmt.Fprintf(&b, "  branches          %12d  (mispredict rate %.4f)\n", r.Branches, r.MispredictRate())
	fmt.Fprintf(&b, "  repl ability      %12.4f  (%d/%d, doubles %d)\n", r.ReplAbility(), r.ReplSuccesses, r.ReplAttempts, r.ReplDoubles)
	fmt.Fprintf(&b, "  loads w/ replica  %12.4f  (%d/%d read hits)\n", r.LoadsWithReplica(), r.ReadHitsWithReplica, r.DL1ReadHits)
	fmt.Fprintf(&b, "  replica-served misses %8d\n", r.ReplicaServedMisses)
	if r.ErrorsInjected > 0 {
		fmt.Fprintf(&b, "  errors injected   %12d  (detected %d)\n", r.ErrorsInjected, r.ErrorsDetected)
		fmt.Fprintf(&b, "  recovered         ecc=%d replica=%d dup=%d l2=%d\n", r.RecoveredByECC, r.RecoveredByReplica, r.RecoveredByDuplicate, r.RecoveredByL2)
		fmt.Fprintf(&b, "  unrecoverable     %12d  (%.6f of loads)\n", r.UnrecoverableLoads, r.UnrecoverableFrac())
	}
	fmt.Fprintf(&b, "  energy (nJ)       L1=%.1f L2=%.1f checks=%.1f total=%.1f\n",
		r.EnergyL1, r.EnergyL2, r.EnergyChecks, r.TotalEnergy())
	if s := r.Sampling; s != nil {
		fmt.Fprintf(&b, "  sampled           %12d windows (%d/%d/%d)  IPC %.3f ± %.3f @%d%%\n",
			s.Windows, s.Period, s.Detail, s.Warmup, s.IPCMean, s.IPCHalfCI, s.Confidence)
		fmt.Fprintf(&b, "  instr by mode     warmed=%d warmup=%d measured=%d\n",
			s.WarmedInstructions, s.WarmupDiscarded, s.MeasuredInstructions)
	}
	if a := r.Adaptive; a != nil {
		fmt.Fprintf(&b, "  adaptive          %12d epochs (%d cycles each, predictor %s)\n",
			a.Epochs, a.EpochCycles, a.Predictor)
		fmt.Fprintf(&b, "  controller        up=%d down=%d accuracy=%.2f final: L%d r=%d w=%d %s %s\n",
			a.MovesUp, a.MovesDown, a.Accuracy(),
			a.FinalLevel, a.FinalReplicas, a.FinalDecayWindow, a.FinalVictim, a.FinalLookup)
	}
	if t := r.TwoTier; t != nil {
		fmt.Fprintf(&b, "  two-tier          %12s  (extra latency %d)\n", t.Tier, t.ExtraLatency)
		fmt.Fprintf(&b, "  mem traffic       reads=%d writes=%d energy=%.1f\n", t.MemReads, t.MemWrites, t.EnergyMem)
		if t.ReplAttempts > 0 || t.ErrorsInjected > 0 {
			fmt.Fprintf(&b, "  tier repl         %12d/%d  (evict replica=%d dead=%d)\n",
				t.ReplSuccesses, t.ReplAttempts, t.ReplicaEvictions, t.DeadEvictions)
			fmt.Fprintf(&b, "  tier errors       injected=%d detected=%d replica=%d ecc=%d cross=%d mem=%d lost=%d silent=%d\n",
				t.ErrorsInjected, t.ErrorsDetected, t.RecoveredByReplica, t.RecoveredByECC,
				t.RecoveredByCross, t.RecoveredByMem, t.UnrecoverableDirty, t.SilentWritebacks)
		}
		if t.CrossOffers > 0 || t.CrossRepairs > 0 {
			fmt.Fprintf(&b, "  cross-tier        offers=%d accepted=%d repairs=%d repaired=%d l1-repaired=%d\n",
				t.CrossOffers, t.CrossAccepted, t.CrossRepairs, t.CrossRepaired, t.L1CrossRepaired)
		}
	}
	return b.String()
}

// csvColumns defines the CSV schema shared by CSVHeader and CSVRow.
var csvColumns = []string{
	"benchmark", "scheme", "instructions", "cycles", "ipc",
	"dl1_reads", "dl1_read_hits", "dl1_read_misses",
	"dl1_writes", "dl1_write_hits", "dl1_write_misses",
	"dl1_miss_rate", "dl1_writebacks", "l2_accesses", "l2_misses",
	"branches", "mispredicts",
	"repl_attempts", "repl_successes", "repl_doubles", "repl_ability",
	"read_hits_with_replica", "loads_with_replica", "replica_served_misses",
	"errors_injected", "errors_detected", "unrecoverable_loads", "unrecoverable_frac",
	"energy_l1", "energy_l2", "energy_checks", "energy_total",
}

// CSVHeader returns the CSV header line for Report rows.
func CSVHeader() string { return strings.Join(csvColumns, ",") }

// CSVRow renders the report as one CSV line matching CSVHeader.
func (r *Report) CSVRow() string {
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
	fields := []string{
		r.Benchmark, r.Scheme, u(r.Instructions), u(r.Cycles), f(r.IPC()),
		u(r.DL1Reads), u(r.DL1ReadHits), u(r.DL1ReadMisses),
		u(r.DL1Writes), u(r.DL1WriteHits), u(r.DL1WriteMisses),
		f(r.DL1MissRate()), u(r.DL1Writebacks), u(r.L2Accesses), u(r.L2Misses),
		u(r.Branches), u(r.Mispredicts),
		u(r.ReplAttempts), u(r.ReplSuccesses), u(r.ReplDoubles), f(r.ReplAbility()),
		u(r.ReadHitsWithReplica), f(r.LoadsWithReplica()), u(r.ReplicaServedMisses),
		u(r.ErrorsInjected), u(r.ErrorsDetected), u(r.UnrecoverableLoads), f(r.UnrecoverableFrac()),
		f(r.EnergyL1), f(r.EnergyL2), f(r.EnergyChecks), f(r.TotalEnergy()),
	}
	return strings.Join(fields, ",")
}
