package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced nanosecond clock, safe for concurrent use
// as NewProgressClock requires.
type fakeClock struct {
	mu sync.Mutex
	ns int64
}

func (c *fakeClock) now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ns
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.ns += int64(d)
	c.mu.Unlock()
}

// TestProgressFakeClock pins that every derived rate is computed from the
// injected clock, so throughput accounting is exact (not wall-time-fuzzy)
// under test.
func TestProgressFakeClock(t *testing.T) {
	clk := &fakeClock{ns: 1_000} // nonzero so the start stamp is stored
	p := NewProgressClock(clk.now)

	p.AddSubmitted(10)
	p.AddStarted(6)
	for i := 0; i < 5; i++ {
		p.AddCompleted(200_000)
	}
	p.AddFailed(1)
	p.AddMemoHit(2)

	clk.advance(2 * time.Second)
	s := p.Snapshot()

	if s.Elapsed != 2*time.Second {
		t.Fatalf("Elapsed = %v, want 2s", s.Elapsed)
	}
	if got, want := s.SimsPerSec(), 2.5; got != want {
		t.Errorf("SimsPerSec = %v, want %v (5 sims / 2s)", got, want)
	}
	if got, want := s.InstructionsPerSec(), 500_000.0; got != want {
		t.Errorf("InstructionsPerSec = %v, want %v (1M inst / 2s)", got, want)
	}
	if got := s.Settled(); got != 8 {
		t.Errorf("Settled = %d, want 8 (5 completed + 1 failed + 2 memo)", got)
	}

	// The rendered status line is deterministic under a fake clock.
	line := s.String()
	for _, want := range []string{"8/10 sims", "2 memoized", "1 failed", "2 sims/s", "0.50M inst/s"} {
		if !strings.Contains(line, want) {
			t.Errorf("String() = %q, missing %q", line, want)
		}
	}

	// Advancing further moves the rates, proving Snapshot re-reads the
	// clock rather than caching the first elapsed value.
	clk.advance(2 * time.Second)
	if got, want := p.Snapshot().SimsPerSec(), 1.25; got != want {
		t.Errorf("SimsPerSec after advance = %v, want %v", got, want)
	}
}

// TestProgressCacheCounters pins the cache-statistics surface: memory
// hits, disk hits, misses, and evictions are independently counted,
// settle accounting includes disk hits, and the hit rate derives from
// hits over cacheable lookups.
func TestProgressCacheCounters(t *testing.T) {
	clk := &fakeClock{ns: 1}
	p := NewProgressClock(clk.now)
	p.AddSubmitted(10)
	for i := 0; i < 4; i++ {
		p.AddCompleted(1000)
		p.AddCacheMiss(1)
	}
	p.AddMemoHit(3)
	p.AddDiskHit(2)
	p.AddEviction(5)
	s := p.Snapshot()
	if s.MemoHits != 3 || s.DiskHits != 2 || s.CacheMisses != 4 || s.Evictions != 5 {
		t.Errorf("counters = memo %d disk %d miss %d evict %d, want 3/2/4/5",
			s.MemoHits, s.DiskHits, s.CacheMisses, s.Evictions)
	}
	if got := s.Settled(); got != 9 {
		t.Errorf("Settled = %d, want 9 (4 completed + 3 memo + 2 disk)", got)
	}
	if got := s.CacheHits(); got != 5 {
		t.Errorf("CacheHits = %d, want 5", got)
	}
	if got, want := s.CacheHitRate(), 5.0/9.0; got != want {
		t.Errorf("CacheHitRate = %v, want %v", got, want)
	}
	line := s.String()
	for _, want := range []string{"3 memoized", "2 disk", "5 evicted"} {
		if !strings.Contains(line, want) {
			t.Errorf("String() = %q, missing %q", line, want)
		}
	}
	if (ProgressSnapshot{}).CacheHitRate() != 0 {
		t.Error("empty snapshot CacheHitRate should be 0")
	}
}

// TestProgressZeroValue pins that the zero value still works (no clock
// stamp: elapsed and rates stay zero, counters still count).
func TestProgressZeroValue(t *testing.T) {
	var p Progress
	p.AddSubmitted(3)
	p.AddCompleted(100)
	s := p.Snapshot()
	if s.Elapsed != 0 {
		t.Errorf("zero-value Elapsed = %v, want 0", s.Elapsed)
	}
	if s.SimsPerSec() != 0 || s.InstructionsPerSec() != 0 {
		t.Errorf("zero-value rates = %v, %v, want 0, 0", s.SimsPerSec(), s.InstructionsPerSec())
	}
	if s.Submitted != 3 || s.Completed != 1 || s.Instructions != 100 {
		t.Errorf("zero-value counters wrong: %+v", s)
	}
}
