package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// wallNanos reads the process wall clock in nanoseconds. It is the single
// sanctioned wall-clock seam in the hot packages: throughput reporting is
// the one place real time is wanted, and everything else must stay a pure
// function of (Machine, Run) so results replay byte-identically.
func wallNanos() int64 {
	return time.Now().UnixNano() //icrvet:ignore determinism the one sanctioned wall-clock seam; progress rates are wall-clock by design
}

// Progress tracks the throughput of a batch of simulations. All counters
// are atomic: one Progress may be shared by many worker goroutines and
// read concurrently by a reporter (the CLI progress line). The zero value
// is ready to use; NewProgress additionally stamps the start time so
// rates can be derived.
type Progress struct {
	submitted    atomic.Uint64
	started      atomic.Uint64
	completed    atomic.Uint64
	failed       atomic.Uint64
	memoHits     atomic.Uint64
	diskHits     atomic.Uint64
	shardHits    atomic.Uint64
	cacheMisses  atomic.Uint64
	cacheErrors  atomic.Uint64
	putErrors    atomic.Uint64
	evictions    atomic.Uint64
	remote       atomic.Uint64
	instructions atomic.Uint64
	startNanos   atomic.Int64

	// now is the nanosecond clock; nil means the wall clock. Tests
	// inject a fake via NewProgressClock to make rates deterministic.
	now func() int64
}

// NewProgress returns a Progress with the wall clock started.
func NewProgress() *Progress {
	return NewProgressClock(wallNanos)
}

// NewProgressClock returns a Progress driven by the given nanosecond
// clock. The clock must be safe for concurrent use; it is read once at
// construction (the start stamp) and once per Snapshot.
func NewProgressClock(now func() int64) *Progress {
	p := &Progress{now: now}
	p.startNanos.Store(now())
	return p
}

// clock reads the progress clock, falling back to the wall clock for
// zero-value Progress instances.
func (p *Progress) clock() int64 {
	if p.now != nil {
		return p.now()
	}
	return wallNanos()
}

// AddSubmitted records n simulations entering the queue.
func (p *Progress) AddSubmitted(n uint64) { p.submitted.Add(n) }

// AddStarted records n simulations beginning execution.
func (p *Progress) AddStarted(n uint64) { p.started.Add(n) }

// AddCompleted records a finished simulation and the instructions it
// committed (for instruction-throughput rates).
func (p *Progress) AddCompleted(instructions uint64) {
	p.completed.Add(1)
	p.instructions.Add(instructions)
}

// AddFailed records a simulation that returned an error (including
// cancellation).
func (p *Progress) AddFailed(n uint64) { p.failed.Add(n) }

// AddMemoHit records a simulation served from the in-memory cache (or
// coalesced onto an in-flight identical run) instead of being executed.
func (p *Progress) AddMemoHit(n uint64) { p.memoHits.Add(n) }

// AddDiskHit records a simulation served from the persistent disk store
// instead of being executed.
func (p *Progress) AddDiskHit(n uint64) { p.diskHits.Add(n) }

// AddShardHit records a simulation served by a remote store shard
// instead of being executed.
func (p *Progress) AddShardHit(n uint64) { p.shardHits.Add(n) }

// AddCacheMiss records a cacheable simulation that no cache layer held,
// so it had to execute. Uncacheable runs (opaque inputs, caching
// disabled) are not counted.
func (p *Progress) AddCacheMiss(n uint64) { p.cacheMisses.Add(n) }

// AddCacheError records a cache-layer read that failed with a real error
// (sick disk, unreachable shard) rather than a miss. Such runs degrade to
// execution; this counter is how the degradation stays visible.
func (p *Progress) AddCacheError(n uint64) { p.cacheErrors.Add(n) }

// AddPutError records a failed write-back into a cache layer. The run
// still succeeds — the report is in hand — but the result did not persist.
func (p *Progress) AddPutError(n uint64) { p.putErrors.Add(n) }

// AddEviction records n entries displaced from a cache layer (memory or
// disk) to respect its capacity.
func (p *Progress) AddEviction(n uint64) { p.evictions.Add(n) }

// AddRemote records a simulation executed by a remote cluster worker
// rather than in this process. Such runs are also counted by AddStarted
// and AddCompleted; this counter tags how many of them went remote.
func (p *Progress) AddRemote(n uint64) { p.remote.Add(n) }

// ProgressSnapshot is a consistent-enough point-in-time view of the
// counters (each field is individually atomic).
type ProgressSnapshot struct {
	Submitted    uint64
	Started      uint64
	Completed    uint64
	Failed       uint64
	MemoHits     uint64
	DiskHits     uint64
	ShardHits    uint64
	CacheMisses  uint64
	CacheErrors  uint64
	PutErrors    uint64
	Evictions    uint64
	Remote       uint64
	Instructions uint64
	Elapsed      time.Duration
}

// Snapshot returns the current counter values and elapsed time.
func (p *Progress) Snapshot() ProgressSnapshot {
	var elapsed time.Duration
	if ns := p.startNanos.Load(); ns != 0 {
		elapsed = time.Duration(p.clock() - ns)
	}
	return ProgressSnapshot{
		Submitted:    p.submitted.Load(),
		Started:      p.started.Load(),
		Completed:    p.completed.Load(),
		Failed:       p.failed.Load(),
		MemoHits:     p.memoHits.Load(),
		DiskHits:     p.diskHits.Load(),
		ShardHits:    p.shardHits.Load(),
		CacheMisses:  p.cacheMisses.Load(),
		CacheErrors:  p.cacheErrors.Load(),
		PutErrors:    p.putErrors.Load(),
		Evictions:    p.evictions.Load(),
		Remote:       p.remote.Load(),
		Instructions: p.instructions.Load(),
		Elapsed:      elapsed,
	}
}

// Settled returns completed + failed + cache hits (memory, disk, shard):
// the number of submitted simulations that have reached a final state.
func (s ProgressSnapshot) Settled() uint64 {
	return s.Completed + s.Failed + s.MemoHits + s.DiskHits + s.ShardHits
}

// CacheHits returns the total runs served without executing a simulation,
// from any cache layer.
func (s ProgressSnapshot) CacheHits() uint64 { return s.MemoHits + s.DiskHits + s.ShardHits }

// CacheHitRate returns hits over (hits + misses) for cacheable runs, in
// [0, 1]; 0 when nothing cacheable has settled.
func (s ProgressSnapshot) CacheHitRate() float64 {
	total := s.CacheHits() + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits()) / float64(total)
}

// SimsPerSec returns the executed-simulation rate over the elapsed time.
func (s ProgressSnapshot) SimsPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Completed) / s.Elapsed.Seconds()
}

// InstructionsPerSec returns the committed-instruction rate.
func (s ProgressSnapshot) InstructionsPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Instructions) / s.Elapsed.Seconds()
}

// String renders a one-line progress summary suitable for a status line.
func (s ProgressSnapshot) String() string {
	return fmt.Sprintf("%d/%d sims (%d memoized, %d disk, %d evicted, %d failed, %.0f sims/s, %.2fM inst/s)",
		s.Settled(), s.Submitted, s.MemoHits, s.DiskHits, s.Evictions, s.Failed,
		s.SimsPerSec(), s.InstructionsPerSec()/1e6)
}
