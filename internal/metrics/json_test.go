package metrics

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// update regenerates testdata/report_schema.json from the current
// encoding. Only meaningful together with a ReportSchemaVersion bump —
// TestReportSchemaFingerprint still fails on unpinned field changes.
var update = flag.Bool("update", false, "rewrite golden files")

// goldenReport populates every field with a distinct value so the golden
// encoding exercises the full schema (reflection below verifies no field
// was missed).
func goldenReport() Report {
	var r Report
	v := reflect.ValueOf(&r).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.String:
			f.SetString(fmt.Sprintf("field%d", i))
		case reflect.Uint64:
			f.SetUint(uint64(i + 1))
		case reflect.Float64:
			f.SetFloat(float64(i) + 0.125)
		default:
			panic("goldenReport: unhandled field kind " + f.Kind().String())
		}
	}
	return r
}

// TestReportJSONGolden pins the exact wire encoding of Report. If this
// fails because Report's fields changed, bump ReportSchemaVersion and
// regenerate the golden file with:
//
//	go test ./internal/metrics -run TestReportJSONGolden -update
func TestReportJSONGolden(t *testing.T) {
	r := goldenReport()
	got, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "report_schema.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file: %v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("Report JSON encoding changed without a schema bump.\n got: %s\nwant: %s\n"+
			"If the field change is intentional, bump metrics.ReportSchemaVersion and re-run with -update.",
			got, want)
	}
	if !strings.Contains(string(got), fmt.Sprintf(`"schema":%d`, ReportSchemaVersion)) {
		t.Errorf("encoding missing schema field: %s", got)
	}
}

// TestReportSchemaFingerprint is the schema-bump tripwire: it pins the
// full (name, type) list of Report's fields for the current
// ReportSchemaVersion. Adding, removing, renaming, or retyping a field
// without bumping the version fails here even if the golden file is
// regenerated.
func TestReportSchemaFingerprint(t *testing.T) {
	const pinnedVersion = 1
	pinnedFields := []string{
		"Benchmark string", "Scheme string",
		"Instructions uint64", "Cycles uint64",
		"DL1Reads uint64", "DL1ReadHits uint64", "DL1ReadMisses uint64",
		"DL1Writes uint64", "DL1WriteHits uint64", "DL1WriteMisses uint64",
		"DL1Writebacks uint64",
		"L2Accesses uint64", "L2Misses uint64", "MemAccesses uint64",
		"IL1Fetches uint64", "IL1Misses uint64",
		"Branches uint64", "Mispredicts uint64",
		"ReplAttempts uint64", "ReplSuccesses uint64", "ReplDoubles uint64",
		"ReadHitsWithReplica uint64", "ReplicaServedMisses uint64",
		"ReplicaEvictions uint64", "DeadEvictions uint64",
		"ErrorsInjected uint64", "ErrorsDetected uint64",
		"RecoveredByECC uint64", "RecoveredByReplica uint64",
		"RecoveredByDuplicate uint64", "RecoveredByL2 uint64",
		"UnrecoverableLoads uint64", "SilentWritebacks uint64",
		"ReadHitsWithDuplicate uint64",
		"VulnerableLineCycles uint64",
		"ScrubChecks uint64", "ScrubErrors uint64",
		"ScrubRepaired uint64", "ScrubLost uint64",
		"EnergyL1 float64", "EnergyL2 float64",
		"EnergyChecks float64", "EnergyRCache float64",
	}
	if ReportSchemaVersion != pinnedVersion {
		t.Fatalf("ReportSchemaVersion = %d but the fingerprint test still pins version %d: "+
			"update pinnedVersion and pinnedFields to match the new schema",
			ReportSchemaVersion, pinnedVersion)
	}
	tp := reflect.TypeOf(Report{})
	var got []string
	for i := 0; i < tp.NumField(); i++ {
		f := tp.Field(i)
		got = append(got, f.Name+" "+f.Type.String())
	}
	if !reflect.DeepEqual(got, pinnedFields) {
		t.Errorf("Report fields changed without bumping ReportSchemaVersion.\n got: %v\nwant: %v\n"+
			"Bump metrics.ReportSchemaVersion, then update pinnedVersion/pinnedFields and the golden file.",
			got, pinnedFields)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	r := goldenReport()
	data, err := json.Marshal(&r)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != r {
		t.Errorf("round trip changed the report:\n got %+v\nwant %+v", back, r)
	}
	// Re-marshalling the decoded report is byte-identical: the durability
	// guarantee the disk store relies on.
	again, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Errorf("re-marshal not byte-identical:\n first %s\nsecond %s", data, again)
	}
}

func TestReportJSONSchemaMismatch(t *testing.T) {
	r := goldenReport()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Replace(data,
		[]byte(fmt.Sprintf(`"schema":%d`, ReportSchemaVersion)),
		[]byte(fmt.Sprintf(`"schema":%d`, ReportSchemaVersion+1)), 1)
	var back Report
	if err := json.Unmarshal(bad, &back); !errors.Is(err, ErrReportSchema) {
		t.Errorf("future-schema decode err = %v, want ErrReportSchema", err)
	}
	missing := []byte(`{"Benchmark":"x"}`)
	if err := json.Unmarshal(missing, &back); !errors.Is(err, ErrReportSchema) {
		t.Errorf("missing-schema decode err = %v, want ErrReportSchema", err)
	}
}
