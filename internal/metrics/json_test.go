package metrics

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// update regenerates testdata/report_schema*.json from the current
// encoding. Only meaningful together with a ReportSchemaVersion bump —
// TestReportSchemaFingerprint still fails on unpinned field changes.
var update = flag.Bool("update", false, "rewrite golden files")

// fillDistinct sets every scalar field of the struct v points at to a
// distinct value, so golden encodings exercise the full schema and
// field-order swaps are visible. It panics on an unhandled kind, which is
// the tripwire that forces this helper (and the goldens) to keep up with
// schema changes.
func fillDistinct(v reflect.Value, base int) {
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.String:
			f.SetString(fmt.Sprintf("field%d", base+i))
		case reflect.Uint64:
			f.SetUint(uint64(base + i + 1))
		case reflect.Int:
			f.SetInt(int64(base + i + 1))
		case reflect.Float64:
			f.SetFloat(float64(base+i) + 0.125)
		case reflect.Pointer, reflect.Slice:
			// Handled by the caller (goldenReport): the pointer fields are
			// the optional Sampling/Adaptive/TwoTier blocks and the only
			// slice is AdaptiveStats.Trajectory.
		default:
			panic("fillDistinct: unhandled field kind " + f.Kind().String())
		}
	}
}

// goldenReport populates every field with a distinct value so the golden
// encoding exercises the full schema (reflection above verifies no field
// was missed). sampled attaches a fully populated SamplingStats block;
// adaptive attaches a fully populated AdaptiveStats block with a
// two-entry trajectory; twotier attaches a fully populated TwoTierStats
// block; exact reports leave all three nil.
func goldenReport(sampled, adaptive, twotier bool) Report {
	var r Report
	fillDistinct(reflect.ValueOf(&r).Elem(), 0)
	if sampled {
		var s SamplingStats
		fillDistinct(reflect.ValueOf(&s).Elem(), 100)
		r.Sampling = &s
	}
	if adaptive {
		var a AdaptiveStats
		fillDistinct(reflect.ValueOf(&a).Elem(), 200)
		a.Trajectory = []AdaptiveMove{{Epoch: 301, Level: 302}, {Epoch: 303, Level: 304}}
		r.Adaptive = &a
	}
	if twotier {
		var tt TwoTierStats
		fillDistinct(reflect.ValueOf(&tt).Elem(), 400)
		r.TwoTier = &tt
	}
	return r
}

// TestReportJSONGolden pins the exact wire encoding of Report in every
// schema variant: an exact run (no optional blocks) must stay
// byte-identical to the version-1 encoding, a sampled run pins the
// version-2 encoding with the Sampling block, an adaptive run pins the
// version-3 encoding with the Adaptive block, and a two-tier run pins the
// version-4 encoding carrying all three optional blocks. If this fails
// because Report's fields changed, bump ReportSchemaVersion and
// regenerate the golden files with:
//
//	go test ./internal/metrics -run TestReportJSONGolden -update
func TestReportJSONGolden(t *testing.T) {
	cases := []struct {
		name                       string
		file                       string
		sampled, adaptive, twotier bool
		schema                     int
	}{
		{"exact", "report_schema.json", false, false, false, exactReportSchema},
		{"sampled", "report_schema_sampled.json", true, false, false, sampledReportSchema},
		{"adaptive", "report_schema_adaptive.json", true, true, false, adaptiveReportSchema},
		{"twotier", "report_schema_twotier.json", true, true, true, ReportSchemaVersion},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := goldenReport(tc.sampled, tc.adaptive, tc.twotier)
			got, err := json.Marshal(r)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.file)
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading golden file: %v (run with -update to regenerate)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("Report JSON encoding changed without a schema bump.\n got: %s\nwant: %s\n"+
					"If the field change is intentional, bump metrics.ReportSchemaVersion and re-run with -update.",
					got, want)
			}
			if !strings.Contains(string(got), fmt.Sprintf(`"schema":%d`, tc.schema)) {
				t.Errorf("encoding missing schema:%d field: %s", tc.schema, got)
			}
		})
	}
}

// TestReportSchemaFingerprint is the schema-bump tripwire: it pins the
// full (name, type) list of Report's fields (and those of SamplingStats,
// AdaptiveStats, and AdaptiveMove, which are part of the wire format) for
// the current ReportSchemaVersion. Adding, removing, renaming, or retyping
// a field without bumping the version fails here even if the golden files
// are regenerated.
func TestReportSchemaFingerprint(t *testing.T) {
	const pinnedVersion = 4
	pinnedFields := []string{
		"Benchmark string", "Scheme string",
		"Instructions uint64", "Cycles uint64",
		"DL1Reads uint64", "DL1ReadHits uint64", "DL1ReadMisses uint64",
		"DL1Writes uint64", "DL1WriteHits uint64", "DL1WriteMisses uint64",
		"DL1Writebacks uint64",
		"L2Accesses uint64", "L2Misses uint64", "MemAccesses uint64",
		"IL1Fetches uint64", "IL1Misses uint64",
		"Branches uint64", "Mispredicts uint64",
		"ReplAttempts uint64", "ReplSuccesses uint64", "ReplDoubles uint64",
		"ReadHitsWithReplica uint64", "ReplicaServedMisses uint64",
		"ReplicaEvictions uint64", "DeadEvictions uint64",
		"ErrorsInjected uint64", "ErrorsDetected uint64",
		"RecoveredByECC uint64", "RecoveredByReplica uint64",
		"RecoveredByDuplicate uint64", "RecoveredByL2 uint64",
		"UnrecoverableLoads uint64", "SilentWritebacks uint64",
		"ReadHitsWithDuplicate uint64",
		"VulnerableLineCycles uint64",
		"ScrubChecks uint64", "ScrubErrors uint64",
		"ScrubRepaired uint64", "ScrubLost uint64",
		"EnergyL1 float64", "EnergyL2 float64",
		"EnergyChecks float64", "EnergyRCache float64",
		"Sampling *metrics.SamplingStats",
		"Adaptive *metrics.AdaptiveStats",
		"TwoTier *metrics.TwoTierStats",
	}
	pinnedSamplingFields := []string{
		"Period uint64", "Detail uint64", "Warmup uint64",
		"Confidence int",
		"Windows int",
		"WarmedInstructions uint64", "WarmupDiscarded uint64",
		"MeasuredInstructions uint64", "MeasuredCycles uint64",
		"IPCMean float64", "IPCHalfCI float64",
		"MissRateMean float64", "MissRateHalfCI float64",
	}
	pinnedAdaptiveFields := []string{
		"Predictor string",
		"EpochCycles uint64", "Epochs uint64",
		"MovesUp int", "MovesDown int",
		"PredHits int", "PredMisses int",
		"FinalLevel int", "FinalReplicas int",
		"FinalDecayWindow uint64",
		"FinalVictim string", "FinalLookup string",
		"Trajectory []metrics.AdaptiveMove",
	}
	pinnedMoveFields := []string{"Epoch uint64", "Level int"}
	pinnedTwoTierFields := []string{
		"Tier string",
		"ExtraLatency uint64",
		"MemReads uint64", "MemWrites uint64",
		"EnergyMem float64",
		"ReplAttempts uint64", "ReplSuccesses uint64",
		"ReplicaEvictions uint64", "DeadEvictions uint64",
		"ErrorsInjected uint64", "ErrorsDetected uint64",
		"RecoveredByReplica uint64", "RecoveredByECC uint64",
		"RecoveredByCross uint64", "RecoveredByMem uint64",
		"UnrecoverableDirty uint64", "SilentWritebacks uint64",
		"CrossOffers uint64", "CrossAccepted uint64",
		"CrossRepairs uint64", "CrossRepaired uint64",
		"L1CrossRepaired uint64",
	}
	if ReportSchemaVersion != pinnedVersion {
		t.Fatalf("ReportSchemaVersion = %d but the fingerprint test still pins version %d: "+
			"update pinnedVersion and the pinned field lists to match the new schema",
			ReportSchemaVersion, pinnedVersion)
	}
	fieldList := func(tp reflect.Type) []string {
		var out []string
		for i := 0; i < tp.NumField(); i++ {
			f := tp.Field(i)
			out = append(out, f.Name+" "+f.Type.String())
		}
		return out
	}
	check := func(tp reflect.Type, pinned []string) {
		if got := fieldList(tp); !reflect.DeepEqual(got, pinned) {
			t.Errorf("%s fields changed without bumping ReportSchemaVersion.\n got: %v\nwant: %v\n"+
				"Bump metrics.ReportSchemaVersion, then update the pinned lists and the golden files.",
				tp.Name(), got, pinned)
		}
	}
	check(reflect.TypeOf(Report{}), pinnedFields)
	check(reflect.TypeOf(SamplingStats{}), pinnedSamplingFields)
	check(reflect.TypeOf(AdaptiveStats{}), pinnedAdaptiveFields)
	check(reflect.TypeOf(AdaptiveMove{}), pinnedMoveFields)
	check(reflect.TypeOf(TwoTierStats{}), pinnedTwoTierFields)
}

func TestReportJSONRoundTrip(t *testing.T) {
	for _, tc := range []struct{ sampled, adaptive, twotier bool }{
		{false, false, false}, {true, false, false}, {false, true, false},
		{true, true, false}, {false, false, true}, {true, true, true},
	} {
		r := goldenReport(tc.sampled, tc.adaptive, tc.twotier)
		data, err := json.Marshal(&r)
		if err != nil {
			t.Fatal(err)
		}
		var back Report
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(back, r) {
			t.Errorf("%+v: round trip changed the report:\n got %+v\nwant %+v", tc, back, r)
		}
		// Re-marshalling the decoded report is byte-identical: the durability
		// guarantee the disk store relies on.
		again, err := json.Marshal(back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, again) {
			t.Errorf("%+v: re-marshal not byte-identical:\n first %s\nsecond %s", tc, data, again)
		}
	}
}

func TestReportJSONSchemaMismatch(t *testing.T) {
	r := goldenReport(true, true, true)
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Replace(data,
		[]byte(fmt.Sprintf(`"schema":%d`, ReportSchemaVersion)),
		[]byte(fmt.Sprintf(`"schema":%d`, ReportSchemaVersion+1)), 1)
	var back Report
	if err := json.Unmarshal(bad, &back); !errors.Is(err, ErrReportSchema) {
		t.Errorf("future-schema decode err = %v, want ErrReportSchema", err)
	}
	missing := []byte(`{"Benchmark":"x"}`)
	if err := json.Unmarshal(missing, &back); !errors.Is(err, ErrReportSchema) {
		t.Errorf("missing-schema decode err = %v, want ErrReportSchema", err)
	}
}

// TestLowSchemaRejectsOptionalBlocks pins the invariant behind the tiered
// schema: a payload may not declare a version too low for the optional
// blocks it carries — a version-1 document must carry none of the
// optional blocks, a version-2 document must not carry Adaptive or
// TwoTier, and a version-3 document must not carry TwoTier.
func TestLowSchemaRejectsOptionalBlocks(t *testing.T) {
	cases := []struct {
		name                       string
		sampled, adaptive, twotier bool
		from, to                   int
	}{
		{"sampling-as-v1", true, false, false, sampledReportSchema, exactReportSchema},
		{"adaptive-as-v1", false, true, false, adaptiveReportSchema, exactReportSchema},
		{"adaptive-as-v2", false, true, false, adaptiveReportSchema, sampledReportSchema},
		{"twotier-as-v1", false, false, true, ReportSchemaVersion, exactReportSchema},
		{"twotier-as-v2", false, false, true, ReportSchemaVersion, sampledReportSchema},
		{"twotier-as-v3", false, false, true, ReportSchemaVersion, adaptiveReportSchema},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := goldenReport(tc.sampled, tc.adaptive, tc.twotier)
			data, err := json.Marshal(r)
			if err != nil {
				t.Fatal(err)
			}
			bad := bytes.Replace(data,
				[]byte(fmt.Sprintf(`"schema":%d`, tc.from)),
				[]byte(fmt.Sprintf(`"schema":%d`, tc.to)), 1)
			var back Report
			if err := json.Unmarshal(bad, &back); !errors.Is(err, ErrReportSchema) {
				t.Errorf("schema-%d payload declared as %d: decode err = %v, want ErrReportSchema",
					tc.from, tc.to, err)
			}
		})
	}
}
