package metrics

import "math"

// MeanCI returns the sample mean of xs and the half-width of the two-sided
// Student-t confidence interval at conf percent (90, 95, or 99; other
// values fall back to 95). With no samples it returns (0, 0); with one
// sample the interval is undefined and the half-width is reported as 0.
// Summation is sequential in slice order, so the result is deterministic
// for a deterministic input order.
func MeanCI(xs []float64, conf int) (mean, half float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	mean = sum / float64(n)
	if n < 2 {
		return mean, 0
	}
	ss := 0.0
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	return mean, tCritical(conf, n-1) * sd / math.Sqrt(float64(n))
}

// tTableDF lists the degrees of freedom covered by the critical-value
// tables; a df between entries uses the largest tabulated df not above it,
// which over-states t slightly (a conservative, wider interval).
var tTableDF = []int{
	1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
	11, 12, 13, 14, 15, 16, 17, 18, 19, 20,
	21, 22, 23, 24, 25, 26, 27, 28, 29, 30,
	40, 60, 120, 300,
}

// Two-sided critical values of Student's t, indexed like tTableDF; the
// final entry (df 300+) is the normal limit.
var (
	tCrit90 = []float64{
		6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
		1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
		1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697,
		1.684, 1.671, 1.658, 1.645,
	}
	tCrit95 = []float64{
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
		2.021, 2.000, 1.980, 1.960,
	}
	tCrit99 = []float64{
		63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
		3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
		2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750,
		2.704, 2.660, 2.617, 2.576,
	}
)

// tCritical returns the two-sided Student-t critical value for the given
// confidence percent and degrees of freedom.
func tCritical(conf, df int) float64 {
	var table []float64
	switch conf {
	case 90:
		table = tCrit90
	case 99:
		table = tCrit99
	default:
		table = tCrit95
	}
	if df < 1 {
		df = 1
	}
	// Largest tabulated df not above the actual df.
	idx := 0
	for i, d := range tTableDF {
		if d > df {
			break
		}
		idx = i
	}
	return table[idx]
}
