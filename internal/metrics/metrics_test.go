package metrics

import (
	"strings"
	"testing"
)

func sampleReport() *Report {
	return &Report{
		Benchmark:    "vpr",
		Scheme:       "ICR-P-PS(S)",
		Instructions: 1000,
		Cycles:       2000,
		DL1Reads:     250, DL1ReadHits: 240, DL1ReadMisses: 10,
		DL1Writes: 100, DL1WriteHits: 95, DL1WriteMisses: 5,
		Branches: 150, Mispredicts: 15,
		ReplAttempts: 100, ReplSuccesses: 60, ReplDoubles: 12,
		ReadHitsWithReplica: 120,
		ErrorsInjected:      4, ErrorsDetected: 3,
		UnrecoverableLoads: 1,
		EnergyL1:           10, EnergyL2: 20, EnergyChecks: 5,
	}
}

func TestDerivedRatios(t *testing.T) {
	r := sampleReport()
	if got := r.IPC(); got != 0.5 {
		t.Errorf("IPC = %g, want 0.5", got)
	}
	if got := r.DL1MissRate(); got != 15.0/350.0 {
		t.Errorf("DL1MissRate = %g", got)
	}
	if got := r.ReplAbility(); got != 0.6 {
		t.Errorf("ReplAbility = %g, want 0.6", got)
	}
	if got := r.ReplDoubleAbility(); got != 0.12 {
		t.Errorf("ReplDoubleAbility = %g, want 0.12", got)
	}
	if got := r.LoadsWithReplica(); got != 0.5 {
		t.Errorf("LoadsWithReplica = %g, want 0.5", got)
	}
	if got := r.UnrecoverableFrac(); got != 1.0/250.0 {
		t.Errorf("UnrecoverableFrac = %g", got)
	}
	if got := r.MispredictRate(); got != 0.1 {
		t.Errorf("MispredictRate = %g, want 0.1", got)
	}
	if got := r.TotalEnergy(); got != 35 {
		t.Errorf("TotalEnergy = %g, want 35", got)
	}
}

func TestZeroDivisionSafety(t *testing.T) {
	r := &Report{}
	checks := map[string]float64{
		"IPC":               r.IPC(),
		"DL1MissRate":       r.DL1MissRate(),
		"ReplAbility":       r.ReplAbility(),
		"ReplDoubleAbility": r.ReplDoubleAbility(),
		"LoadsWithReplica":  r.LoadsWithReplica(),
		"UnrecoverableFrac": r.UnrecoverableFrac(),
		"MispredictRate":    r.MispredictRate(),
	}
	for name, v := range checks {
		if v != 0 {
			t.Errorf("%s on empty report = %g, want 0", name, v)
		}
	}
}

func TestStringContainsKeyFields(t *testing.T) {
	s := sampleReport().String()
	for _, want := range []string{"vpr", "ICR-P-PS(S)", "repl ability", "loads w/ replica", "unrecoverable"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestCSVShapeMatchesHeader(t *testing.T) {
	header := CSVHeader()
	row := sampleReport().CSVRow()
	nh := len(strings.Split(header, ","))
	nr := len(strings.Split(row, ","))
	if nh != nr {
		t.Errorf("header has %d columns, row has %d", nh, nr)
	}
	if !strings.HasPrefix(row, "vpr,ICR-P-PS(S),1000,2000,") {
		t.Errorf("unexpected row prefix: %s", row)
	}
}

func TestStringWithErrorSection(t *testing.T) {
	r := sampleReport()
	s := r.String()
	if !strings.Contains(s, "errors injected") || !strings.Contains(s, "recovered") {
		t.Errorf("error section missing:\n%s", s)
	}
	r.ErrorsInjected = 0
	if strings.Contains(r.String(), "errors injected") {
		t.Error("error section should be omitted without injection")
	}
}

func TestDuplicateAndVulnerabilityDerived(t *testing.T) {
	r := &Report{DL1ReadHits: 200, ReadHitsWithDuplicate: 50}
	if got := r.LoadsWithDuplicate(); got != 0.25 {
		t.Errorf("LoadsWithDuplicate = %g, want 0.25", got)
	}
	r2 := &Report{Cycles: 1000, VulnerableLineCycles: 128_000}
	if got := r2.VulnerabilityPerLine(256); got != 0.5 {
		t.Errorf("VulnerabilityPerLine = %g, want 0.5", got)
	}
	var zero Report
	if zero.LoadsWithDuplicate() != 0 || zero.VulnerabilityPerLine(256) != 0 {
		t.Error("zero reports must not divide by zero")
	}
	if zero.VulnerabilityPerLine(0) != 0 {
		t.Error("zero lines must not divide by zero")
	}
}

func TestTotalEnergyIncludesRCache(t *testing.T) {
	r := &Report{EnergyL1: 1, EnergyL2: 2, EnergyChecks: 3, EnergyRCache: 4}
	if got := r.TotalEnergy(); got != 10 {
		t.Errorf("TotalEnergy = %g, want 10", got)
	}
}
