package metrics

import (
	"encoding/json"
	"errors"
	"fmt"
)

// ReportSchemaVersion is the wire-format version of Report's JSON
// encoding. It is embedded in every marshalled report (the "schema"
// field), in every icrd HTTP response, and in every internal/store disk
// entry header, so all three share one versioned wire form.
//
// Version history:
//
//	1 — exact runs: every counter, no sampling fields.
//	2 — adds the optional Sampling block (SamplingStats) for sampled
//	    runs. Exact runs still marshal as version 1 — their encoding is
//	    byte-identical to what version-1 writers produced — and decoders
//	    accept both, so only payloads that actually carry sampling data
//	    are tagged with the new version.
//	3 — adds the optional Adaptive block (AdaptiveStats) for runs driven
//	    by the ICR-ADAPT runtime controller. As with version 2, the new
//	    version tags only payloads that actually carry the block: static
//	    runs keep marshalling as version 1 (or 2 when sampled), byte-
//	    identical to what older writers produced.
//	4 — adds the optional TwoTier block (TwoTierStats) for runs with a
//	    protected second tier or memory-tier energy pricing. Same gating
//	    as before: only payloads carrying the block are tagged with the
//	    new version.
//
// Bump it whenever the set of Report fields changes (added, removed, or
// renamed): decoders reject unknown versions, which turns a stale disk
// entry into a cache miss instead of a silently wrong report. The golden
// test in json_test.go fails on any field change that is not accompanied
// by a bump.
const ReportSchemaVersion = 4

// exactReportSchema is the wire version emitted for reports without
// sampling, adaptive, or two-tier data; see the version history above.
const exactReportSchema = 1

// sampledReportSchema is the wire version emitted for sampled reports
// without adaptive or two-tier data.
const sampledReportSchema = 2

// adaptiveReportSchema is the wire version emitted for adaptive reports
// without two-tier data.
const adaptiveReportSchema = 3

// ErrReportSchema is returned (wrapped) by Report.UnmarshalJSON when the
// payload's schema version is not one this decoder understands, or when a
// payload's fields contradict its declared version. Callers that read
// cached reports should treat it as a miss, not a failure.
var ErrReportSchema = errors.New("metrics: report schema version mismatch")

// reportWire is Report plus the schema discriminator. The alias type
// drops Report's methods so encoding/json does not recurse into
// MarshalJSON/UnmarshalJSON.
type reportAlias Report

type reportWire struct {
	Schema int `json:"schema"`
	reportAlias
}

// wireVersion returns the schema version a report marshals under: the
// lowest version whose field set covers the optional blocks the report
// actually carries, so payloads older readers could parse keep the
// encoding those readers produced.
func (r *Report) wireVersion() int {
	switch {
	case r.TwoTier != nil:
		return ReportSchemaVersion
	case r.Adaptive != nil:
		return adaptiveReportSchema
	case r.Sampling != nil:
		return sampledReportSchema
	default:
		return exactReportSchema
	}
}

// MarshalJSON encodes the report with its schema version as a leading
// "schema" field (see wireVersion). The encoding is stable: field order
// follows the struct definition and float64 values round-trip exactly
// (encoding/json emits the shortest representation that parses back to
// the same bits), so a report stored and reloaded is byte-identical when
// re-marshalled.
func (r Report) MarshalJSON() ([]byte, error) {
	return json.Marshal(reportWire{Schema: r.wireVersion(), reportAlias: reportAlias(r)})
}

// UnmarshalJSON decodes a report, accepting every current wire version
// and rejecting anything else with an error wrapping ErrReportSchema. A
// payload claiming a version too low for the optional blocks it carries
// is malformed and rejected the same way.
func (r *Report) UnmarshalJSON(data []byte) error {
	var w reportWire
	w.Schema = -1
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	switch w.Schema {
	case exactReportSchema:
		if w.Sampling != nil {
			return fmt.Errorf("%w: version %d payload carries sampling fields", ErrReportSchema, w.Schema)
		}
		if w.Adaptive != nil {
			return fmt.Errorf("%w: version %d payload carries adaptive fields", ErrReportSchema, w.Schema)
		}
		if w.TwoTier != nil {
			return fmt.Errorf("%w: version %d payload carries two-tier fields", ErrReportSchema, w.Schema)
		}
	case sampledReportSchema:
		if w.Adaptive != nil {
			return fmt.Errorf("%w: version %d payload carries adaptive fields", ErrReportSchema, w.Schema)
		}
		if w.TwoTier != nil {
			return fmt.Errorf("%w: version %d payload carries two-tier fields", ErrReportSchema, w.Schema)
		}
	case adaptiveReportSchema:
		if w.TwoTier != nil {
			return fmt.Errorf("%w: version %d payload carries two-tier fields", ErrReportSchema, w.Schema)
		}
	case ReportSchemaVersion:
	default:
		return fmt.Errorf("%w: got %d, want %d, %d, %d, or %d", ErrReportSchema, w.Schema,
			exactReportSchema, sampledReportSchema, adaptiveReportSchema, ReportSchemaVersion)
	}
	*r = Report(w.reportAlias)
	return nil
}
