package metrics

import (
	"encoding/json"
	"errors"
	"fmt"
)

// ReportSchemaVersion is the wire-format version of Report's JSON
// encoding. It is embedded in every marshalled report (the "schema"
// field), in every icrd HTTP response, and in every internal/store disk
// entry header, so all three share one versioned wire form.
//
// Bump it whenever the set of Report fields changes (added, removed, or
// renamed): decoders reject mismatched versions, which turns a stale disk
// entry into a cache miss instead of a silently wrong report. The golden
// test in json_test.go fails on any field change that is not accompanied
// by a bump.
const ReportSchemaVersion = 1

// ErrReportSchema is returned (wrapped) by Report.UnmarshalJSON when the
// payload's schema version does not match ReportSchemaVersion. Callers
// that read cached reports should treat it as a miss, not a failure.
var ErrReportSchema = errors.New("metrics: report schema version mismatch")

// reportWire is Report plus the schema discriminator. The alias type
// drops Report's methods so encoding/json does not recurse into
// MarshalJSON/UnmarshalJSON.
type reportAlias Report

type reportWire struct {
	Schema int `json:"schema"`
	reportAlias
}

// MarshalJSON encodes the report with its schema version as a leading
// "schema" field. The encoding is stable: field order follows the struct
// definition and float64 values round-trip exactly (encoding/json emits
// the shortest representation that parses back to the same bits), so a
// report stored and reloaded is byte-identical when re-marshalled.
func (r Report) MarshalJSON() ([]byte, error) {
	return json.Marshal(reportWire{Schema: ReportSchemaVersion, reportAlias: reportAlias(r)})
}

// UnmarshalJSON decodes a report, rejecting payloads whose schema version
// differs from ReportSchemaVersion with an error wrapping
// ErrReportSchema.
func (r *Report) UnmarshalJSON(data []byte) error {
	var w reportWire
	w.Schema = -1
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.Schema != ReportSchemaVersion {
		return fmt.Errorf("%w: got %d, want %d", ErrReportSchema, w.Schema, ReportSchemaVersion)
	}
	*r = Report(w.reportAlias)
	return nil
}
